"""JSONL wire format and the index/serve CLI subcommands."""

import io
import json
import math

import pytest

from repro.kb.entity import EntityDescription
from repro.obs import Recorder
from repro.serving.engine import MatchDecision
from repro.serving.io import (
    ControlRequest,
    RequestError,
    control_from_json,
    decision_to_json,
    entity_from_json,
    entity_to_json,
    iter_requests,
    read_requests,
    write_decisions,
)


class TestEntityJson:
    def test_pairs_form(self):
        entity = entity_from_json(
            {"uri": "q", "pairs": [["label", "Bray"], ["label", "Eltham"]]}, "-"
        )
        assert entity.uri == "q"
        assert entity.pairs == (("label", "Bray"), ("label", "Eltham"))

    def test_attributes_form(self):
        entity = entity_from_json(
            {"uri": "q", "attributes": {"a": "1", "b": ["2", "3"]}}, "-"
        )
        assert entity.pairs == (("a", "1"), ("b", "2"), ("b", "3"))

    def test_default_uri(self):
        entity = entity_from_json({"pairs": [["a", "b"]]}, "query-7")
        assert entity.uri == "query-7"

    def test_roundtrip(self):
        entity = EntityDescription("q", [("a", "1"), ("b", "2")])
        assert entity_from_json(entity_to_json(entity), "-") == entity

    def test_scalar_values_coerced_in_pairs(self):
        entity = entity_from_json(
            {"pairs": [["year", 1995], ["rating", 4.5], ["open", True]]}, "-"
        )
        assert set(entity.pairs) == {
            ("year", "1995"),
            ("rating", "4.5"),
            ("open", "true"),
        }

    def test_scalar_values_coerced_in_attributes(self):
        entity = entity_from_json(
            {"attributes": {"year": 2001, "tags": ["a", 7, False]}}, "-"
        )
        assert set(entity.pairs) == {
            ("year", "2001"),
            ("tags", "a"),
            ("tags", "7"),
            ("tags", "false"),
        }

    def test_pair_attribute_coerced(self):
        entity = entity_from_json({"pairs": [[3, "x"]]}, "-")
        assert entity.pairs == (("3", "x"),)

    @pytest.mark.parametrize(
        "payload",
        [
            [],  # not an object
            {"uri": "q"},  # neither pairs nor attributes
            {"pairs": [["only-one"]]},  # malformed pair
            {"attributes": ["not", "a", "mapping"]},
            {"pairs": [["a", None]]},  # null value
            {"pairs": [["a", {"nested": "object"}]]},
            {"pairs": [["a", ["nested", "array"]]]},
            {"attributes": {"a": None}},
            {"attributes": {"a": {"nested": "object"}}},
            {"attributes": {"a": [["doubly", "nested"]]}},
        ],
    )
    def test_malformed_rejected(self, payload):
        with pytest.raises(ValueError):
            entity_from_json(payload, "-")


class TestDecisionJson:
    def test_matched_decision(self):
        decision = MatchDecision(
            query_uri="q", kb2_id=3, kb2_uri="t3", rule="R2",
            score=2.5, candidates=7, cached=True, latency_ms=0.1234,
        )
        payload = decision_to_json(decision)
        assert payload["query"] == "q"
        assert payload["match"] == "t3"
        assert payload["match_id"] == 3
        assert payload["rule"] == "R2"
        assert payload["score"] == 2.5
        assert payload["candidates"] == 7
        assert payload["cached"] is True
        assert payload["latency_ms"] == 0.123
        json.dumps(payload)  # must be valid JSON

    def test_infinite_r1_score_is_null(self):
        decision = MatchDecision(
            query_uri="q", kb2_id=0, kb2_uri="t0", rule="R1",
            score=math.inf, candidates=1,
        )
        payload = decision_to_json(decision)
        assert payload["rule"] == "R1"
        assert payload["score"] is None
        assert "Infinity" not in json.dumps(payload)

    @pytest.mark.parametrize(
        ("rule", "score"),
        [
            ("R2", math.inf),  # only R1 may be infinite
            ("R1", -math.inf),
            ("R1", math.nan),
            ("R3", math.nan),
        ],
    )
    def test_other_non_finite_scores_raise(self, rule, score):
        decision = MatchDecision(
            query_uri="q", kb2_id=0, kb2_uri="t0", rule=rule,
            score=score, candidates=1,
        )
        with pytest.raises(ValueError, match="non-finite score"):
            decision_to_json(decision)

    def test_unmatched_decision(self):
        decision = MatchDecision(
            query_uri="q", kb2_id=None, kb2_uri=None, rule=None,
            score=None, candidates=0,
        )
        payload = decision_to_json(decision)
        assert payload["match"] is None
        assert payload["match_id"] is None
        assert payload["score"] is None


class TestStreams:
    def test_read_requests_skips_blanks_and_numbers_lines(self):
        stream = io.StringIO(
            '{"pairs": [["a", "1"]]}\n'
            "\n"
            '{"uri": "named", "attributes": {"b": "2"}}\n'
        )
        entities = list(read_requests(stream))
        assert [e.uri for e in entities] == ["query-1", "named"]

    def test_read_requests_raises_with_line_number(self):
        stream = io.StringIO('{"pairs": [["a", "1"]]}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            list(read_requests(stream))

    def test_default_uris_contiguous_across_blank_lines(self):
        stream = io.StringIO(
            "\n"
            '{"pairs": [["a", "1"]]}\n'
            "\n\n"
            '{"pairs": [["a", "2"]]}\n'
            '{"uri": "named", "pairs": [["a", "3"]]}\n'
            '{"pairs": [["a", "4"]]}\n'
        )
        uris = [e.uri for e in read_requests(stream)]
        # Numbering follows accepted-request position, not raw line
        # number: named requests consume a position, blanks do not.
        assert uris == ["query-1", "query-2", "named", "query-4"]

    def test_non_scalar_value_error_cites_raw_line_number(self):
        stream = io.StringIO(
            "\n"
            '{"pairs": [["a", "1"]]}\n'
            '{"pairs": [["a", {"bad": 1}]]}\n'
        )
        with pytest.raises(ValueError, match="line 3.*JSON scalar"):
            list(read_requests(stream))

    def test_read_requests_accepts_numeric_values(self):
        stream = io.StringIO('{"pairs": [["year", 1995]]}\n')
        (entity,) = read_requests(stream)
        assert entity.pairs == (("year", "1995"),)

    def test_write_decisions(self):
        sink = io.StringIO()
        write_decisions(
            [
                MatchDecision(
                    query_uri="q", kb2_id=1, kb2_uri="t1", rule="R3",
                    score=0.6, candidates=2,
                )
            ],
            sink,
        )
        lines = sink.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["match"] == "t1"


class TestLenientReader:
    def test_errors_are_yielded_in_sequence_and_scan_continues(self):
        stream = io.StringIO(
            '{"pairs": [["a", "1"]]}\n'
            "not json at all\n"
            '{"pairs": [["a", "2"]]}\n'
            '{"pairs": [["a", {"nested": 1}]]}\n'
            '{"uri": "named", "pairs": [["a", "3"]]}\n'
        )
        items = list(iter_requests(stream))
        assert isinstance(items[0], EntityDescription)
        assert isinstance(items[1], RequestError)
        assert isinstance(items[2], EntityDescription)
        assert isinstance(items[3], RequestError)
        assert isinstance(items[4], EntityDescription)
        assert items[1].line == 2
        assert items[3].line == 4
        # Default URIs count accepted requests only, so they stay
        # contiguous across rejected lines.
        assert [e.uri for e in items if isinstance(e, EntityDescription)] == [
            "query-1", "query-2", "named",
        ]

    def test_error_record_json_shape(self):
        record = RequestError(7, "bad request on line 7: boom")
        assert record.to_json() == {
            "error": "bad request on line 7: boom", "line": 7,
        }
        json.dumps(record.to_json())

    @pytest.mark.parametrize("literal", ["NaN", "Infinity", "-Infinity"])
    def test_non_finite_numbers_rejected(self, literal):
        # json.loads accepts these non-standard literals; they have no
        # token form and must become error records, not entities.
        stream = io.StringIO('{"pairs": [["year", %s]]}\n' % literal)
        (item,) = iter_requests(stream)
        assert isinstance(item, RequestError)
        assert "finite" in item.error

    def test_non_finite_rejected_in_attributes_form(self):
        stream = io.StringIO('{"uri": "q", "attributes": {"year": NaN}}\n')
        (item,) = iter_requests(stream)
        assert isinstance(item, RequestError)

    def test_oversized_line_rejected_without_parsing(self):
        huge = '{"pairs": [["a", "%s"]]}' % ("x" * 200)
        stream = io.StringIO(huge + "\n" + '{"pairs": [["a", "1"]]}\n')
        items = list(iter_requests(stream, max_line_bytes=100))
        assert isinstance(items[0], RequestError)
        assert "exceeds 100 bytes" in items[0].error
        assert isinstance(items[1], EntityDescription)

    def test_blank_lines_are_separators_not_errors(self):
        stream = io.StringIO("\n\n" + '{"pairs": [["a", "1"]]}\n' + "\n")
        items = list(iter_requests(stream))
        assert len(items) == 1
        assert isinstance(items[0], EntityDescription)

    def test_rejections_counted_on_the_given_recorder(self):
        recorder = Recorder()
        stream = io.StringIO("not json\n{bad\n" + '{"pairs": [["a", "1"]]}\n')
        items = list(iter_requests(stream, recorder=recorder))
        assert recorder.counter_value("serving.request_errors") == 2
        assert sum(isinstance(item, RequestError) for item in items) == 2

    def test_strict_reader_promotes_the_first_error(self):
        stream = io.StringIO('{"pairs": [["a", "1"]]}\nnot json\n')
        with pytest.raises(ValueError, match="bad request on line 2"):
            list(read_requests(stream))

    def test_size_guard_measures_bytes_not_characters(self):
        # Regression: the guard compared len(line) -- *characters* --
        # against the byte budget, so a multi-byte payload could be up
        # to 4x over the limit and still pass.  "💥" is 4 UTF-8 bytes.
        payload = '{"pairs": [["a", "%s"]]}' % ("\U0001f4a5" * 30)
        assert len(payload) <= 100 < len(payload.encode("utf-8"))
        stream = io.StringIO(payload + "\n")
        (item,) = iter_requests(stream, max_line_bytes=100)
        assert isinstance(item, RequestError)
        assert "exceeds 100 bytes" in item.error

    def test_size_guard_excludes_the_line_terminator(self):
        # A payload of exactly the budget passes; its trailing "\n"
        # (and "\r\n") never counts against it.
        payload = '{"pairs": [["a", "%s"]]}' % "x"
        budget = len(payload.encode("utf-8"))
        for terminator in ("\n", "\r\n"):
            stream = io.StringIO(payload + terminator)
            (item,) = iter_requests(stream, max_line_bytes=budget)
            assert isinstance(item, EntityDescription), terminator


class TestControlRecords:
    def test_upsert_parsed(self):
        request = control_from_json(
            {
                "control": "upsert",
                "entity": {"uri": "e1", "pairs": [["name", "bray"]]},
            },
            line=3,
        )
        assert isinstance(request, ControlRequest)
        assert request.op == "upsert"
        assert request.line == 3
        assert request.entity.uri == "e1"
        assert request.entity.pairs == (("name", "bray"),)

    def test_delete_parsed(self):
        request = control_from_json({"control": "delete", "uri": "e1"}, line=1)
        assert request.op == "delete"
        assert request.uri == "e1"

    @pytest.mark.parametrize("op", ["compact", "reload"])
    def test_compact_and_reload_take_an_optional_path(self, op):
        bare = control_from_json({"control": op}, line=1)
        assert bare.op == op and bare.path is None
        with_path = control_from_json({"control": op, "path": "x.idx"}, line=1)
        assert with_path.path == "x.idx"

    @pytest.mark.parametrize(
        "payload",
        [
            {"control": "merge"},
            {"control": "upsert"},
            {"control": "upsert", "entity": {"pairs": [["a", "1"]]}},
            {"control": "delete"},
            {"control": "delete", "uri": ""},
            {"control": "reload", "path": 7},
        ],
    )
    def test_malformed_control_rejected(self, payload):
        with pytest.raises((ValueError, KeyError)):
            control_from_json(payload, line=1)

    def test_lenient_reader_yields_control_requests(self):
        stream = io.StringIO(
            '{"pairs": [["a", "1"]]}\n'
            '{"control": "delete", "uri": "e1"}\n'
            '{"pairs": [["a", "2"]]}\n'
        )
        first, control, second = list(iter_requests(stream))
        assert isinstance(control, ControlRequest)
        assert control.line == 2
        # Control records do not consume positional query numbers.
        assert first.uri == "query-1"
        assert second.uri == "query-2"

    def test_malformed_control_becomes_error_record(self):
        stream = io.StringIO('{"control": "noop"}\n')
        (item,) = iter_requests(stream)
        assert isinstance(item, RequestError)
        assert "unknown control operation" in item.error

    def test_strict_reader_rejects_control_records(self):
        stream = io.StringIO('{"control": "delete", "uri": "e1"}\n')
        with pytest.raises(ValueError, match="control record on line 1"):
            list(read_requests(stream))


class TestDegradedField:
    def test_degraded_serialises_true(self):
        decision = MatchDecision(
            query_uri="q", kb2_id=0, kb2_uri="t0", rule="R1",
            score=math.inf, candidates=0, degraded=True,
        )
        payload = decision_to_json(decision)
        assert payload["degraded"] is True

    def test_default_is_false(self):
        decision = MatchDecision(
            query_uri="q", kb2_id=None, kb2_uri=None, rule=None,
            score=None, candidates=0,
        )
        assert decision_to_json(decision)["degraded"] is False

    def test_degraded_participates_in_equality(self):
        full = MatchDecision(
            query_uri="q", kb2_id=0, kb2_uri="t0", rule="R1",
            score=math.inf, candidates=0,
        )
        degraded = MatchDecision(
            query_uri="q", kb2_id=0, kb2_uri="t0", rule="R1",
            score=math.inf, candidates=0, degraded=True,
        )
        assert full != degraded


class TestCli:
    def test_index_then_serve(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.datasets.profiles import scaled_profile
        from repro.kb.rdf import save_ntriples

        pair = scaled_profile("restaurant", 0.2)
        kb2_path = tmp_path / "kb2.nt"
        save_ntriples(pair.kb2, kb2_path)
        index_path = tmp_path / "kb2.idx"

        assert main(["index", str(kb2_path), "-o", str(index_path)]) == 0
        assert index_path.exists()
        capsys.readouterr()

        requests = tmp_path / "queries.jsonl"
        with requests.open("w", encoding="utf-8") as handle:
            for entity in list(pair.kb1)[:8]:
                handle.write(
                    json.dumps({"uri": entity.uri, "pairs": [list(p) for p in entity.pairs]})
                    + "\n"
                )

        assert main(
            ["serve", str(index_path), "-i", str(requests), "--stats"]
        ) == 0
        captured = capsys.readouterr()
        responses = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert len(responses) == 8
        assert all("match" in r and "latency_ms" in r for r in responses)
        stats_line = next(
            line for line in captured.err.splitlines() if line.startswith("# {")
        )
        stats = json.loads(stats_line[2:])
        assert stats["queries"] == 8

    def test_serve_batched(self, tmp_path, capsys):
        from repro.cli import main
        from repro.datasets.profiles import scaled_profile
        from repro.kb.rdf import save_ntriples

        pair = scaled_profile("restaurant", 0.2)
        kb2_path = tmp_path / "kb2.nt"
        save_ntriples(pair.kb2, kb2_path)
        index_path = tmp_path / "kb2.idx"
        assert main(["index", str(kb2_path), "-o", str(index_path)]) == 0
        capsys.readouterr()

        requests = tmp_path / "queries.jsonl"
        with requests.open("w", encoding="utf-8") as handle:
            for entity in list(pair.kb1)[:6]:
                handle.write(json.dumps(entity_to_json(entity)) + "\n")

        assert main(
            ["serve", str(index_path), "-i", str(requests), "--batch-size", "4"]
        ) == 0
        out = capsys.readouterr().out
        responses = [json.loads(line) for line in out.strip().splitlines()]
        assert len(responses) == 6
        assert [r["query"] for r in responses] == [
            e.uri for e in list(pair.kb1)[:6]
        ]
