"""Robustness of the columnar index format (version 2).

Corruption guards (truncation, foreign magic, future versions), edge
shapes (empty KB2, tokens with zero postings), byte-determinism of the
encoder, the legacy-pickle migration path, and the zero-copy view
classes backing ``load(mmap=True)``.
"""

from array import array

import pytest

from repro.core.config import MinoanERConfig, config_from_dict, config_to_dict
from repro.kb.knowledge_base import KnowledgeBase
from repro.kernels import numpy_available
from repro.serving import format as index_format
from repro.serving.index import (
    FORMAT_VERSION,
    LEGACY_FORMAT_VERSION,
    MAGIC,
    ResolutionIndex,
)

_PERSISTED_FIELDS = (
    "kb_name",
    "n2",
    "uris2",
    "config",
    "tokenizer",
    "name_attributes",
    "names",
    "postings",
    "singleton_weights",
    "in_neighbors",
)

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="mmap loading requires numpy"
)


def _fields_of(index: ResolutionIndex) -> dict:
    return {name: getattr(index, name) for name in _PERSISTED_FIELDS}


@pytest.fixture
def saved_index(restaurant_kbs, tmp_path):
    _, kb2 = restaurant_kbs
    index = ResolutionIndex.build(kb2, MinoanERConfig(candidates_k=7))
    path = tmp_path / "kb2.idx"
    index.save(path)
    return index, path


class TestCorruptionGuards:
    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "foreign.idx"
        path.write_bytes(b"\x93NUMPY" + b"\x00" * 64)
        with pytest.raises(ValueError, match="not a MinoanER resolution index"):
            ResolutionIndex.load(path)

    def test_future_version(self, saved_index):
        _, path = saved_index
        raw = bytearray(path.read_bytes())
        raw[len(MAGIC)] = FORMAT_VERSION + 1
        path.write_bytes(bytes(raw))
        for mmap in (False, True):
            with pytest.raises(ValueError, match="unsupported index format version"):
                ResolutionIndex.load(path, mmap=mmap)

    def test_magic_only(self, tmp_path):
        path = tmp_path / "stub.idx"
        path.write_bytes(MAGIC)
        with pytest.raises(ValueError, match="unsupported index format version"):
            ResolutionIndex.load(path)

    def test_truncated_header(self, saved_index, tmp_path):
        _, path = saved_index
        stub = tmp_path / "cut.idx"
        stub.write_bytes(path.read_bytes()[: len(MAGIC) + 2])
        with pytest.raises(ValueError, match="truncated index file"):
            ResolutionIndex.load(stub)

    @pytest.mark.parametrize("mmap", [False, pytest.param(True, marks=needs_numpy)])
    def test_truncated_section(self, saved_index, tmp_path, mmap):
        _, path = saved_index
        stub = tmp_path / "cut.idx"
        stub.write_bytes(path.read_bytes()[:-64])
        with pytest.raises(ValueError, match="truncated index file"):
            ResolutionIndex.load(stub, mmap=mmap)

    def test_corrupt_header_json(self, saved_index):
        _, path = saved_index
        raw = bytearray(path.read_bytes())
        # Smash the first byte of the JSON header.
        raw[len(MAGIC) + 5] = 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="corrupt index header"):
            ResolutionIndex.load(path)


class TestEdgeShapes:
    @pytest.mark.parametrize("mmap", [False, pytest.param(True, marks=needs_numpy)])
    def test_empty_kb2_roundtrip(self, tmp_path, mmap):
        index = ResolutionIndex.build(KnowledgeBase([], name="empty"))
        path = tmp_path / "empty.idx"
        index.save(path)
        loaded = ResolutionIndex.load(path, mmap=mmap)
        assert loaded.n2 == 0
        assert len(loaded.postings) == 0
        assert len(loaded.names) == 0
        assert list(loaded.uris2) == []
        assert len(loaded.in_neighbors) == 0

    @pytest.mark.parametrize("mmap", [False, pytest.param(True, marks=needs_numpy)])
    def test_zero_posting_token_roundtrip(self, restaurant_kbs, tmp_path, mmap):
        _, kb2 = restaurant_kbs
        index = ResolutionIndex.build(kb2)
        # A token indexed with no postings cannot arise from build()
        # (block_weight(0) is undefined), but the format must carry it:
        # a sharded or filtered index may leave hollow tokens behind.
        index.postings["zz-hollow-token"] = array("i")
        index.singleton_weights["zz-hollow-token"] = 0.0
        path = tmp_path / "hollow.idx"
        index.save(path)
        loaded = ResolutionIndex.load(path, mmap=mmap)
        assert "zz-hollow-token" in loaded.postings
        assert list(loaded.postings["zz-hollow-token"]) == []
        assert loaded.singleton_weights["zz-hollow-token"] == 0.0
        assert loaded.entity_frequency("zz-hollow-token") == 0


class TestByteDeterminism:
    def test_save_load_save_identical(self, saved_index, tmp_path):
        _, path = saved_index
        original = path.read_bytes()
        resaved = tmp_path / "again.idx"
        ResolutionIndex.load(path).save(resaved)
        assert resaved.read_bytes() == original

    @needs_numpy
    def test_mmap_load_save_identical(self, saved_index, tmp_path):
        _, path = saved_index
        original = path.read_bytes()
        resaved = tmp_path / "again.idx"
        ResolutionIndex.load(path, mmap=True).save(resaved)
        assert resaved.read_bytes() == original

    def test_sections_are_aligned(self, saved_index):
        _, path = saved_index
        data = path.read_bytes()
        header, base = index_format.parse_header(data, len(data))
        assert base % index_format.ALIGNMENT == 0
        for section in header["sections"]:
            assert section["offset"] % index_format.ALIGNMENT == 0

    def test_config_survives_json_roundtrip(self):
        config = MinoanERConfig(candidates_k=9, stopwords=("the", "of"))
        assert config_from_dict(config_to_dict(config)) == config
        # Unknown keys from a newer build are ignored, not fatal.
        augmented = dict(config_to_dict(config), future_knob=True)
        assert config_from_dict(augmented) == config


class TestLegacyMigration:
    def test_legacy_pickle_loads_with_deprecation(self, saved_index, tmp_path):
        index, _ = saved_index
        legacy = tmp_path / "legacy.idx"
        index_format.write_legacy_index(_fields_of(index), legacy)
        assert legacy.read_bytes()[len(MAGIC)] == LEGACY_FORMAT_VERSION
        with pytest.warns(DeprecationWarning, match="legacy pickle index format"):
            loaded = ResolutionIndex.load(legacy)
        assert loaded.names == index.names
        assert loaded.singleton_weights == index.singleton_weights
        assert loaded.load_info == {
            "mmap": False,
            "format_version": LEGACY_FORMAT_VERSION,
            "file_bytes": legacy.stat().st_size,
        }

    def test_migrate_cli_rewrites_in_place(self, saved_index, tmp_path):
        from repro.cli import main

        index, path = saved_index
        legacy = tmp_path / "legacy.idx"
        index_format.write_legacy_index(_fields_of(index), legacy)
        assert main(["index", "--migrate", str(legacy)]) == 0
        # Now a v2 file, byte-identical to a fresh save of the same index.
        assert legacy.read_bytes() == path.read_bytes()
        loaded = ResolutionIndex.load(legacy)  # no DeprecationWarning now
        assert loaded.load_info["format_version"] == FORMAT_VERSION

    def test_index_command_requires_output_without_migrate(self, capsys):
        from repro.cli import main

        assert main(["index", "whatever.nt"]) == 2
        assert "--output is required" in capsys.readouterr().err


class TestLoadInfoAndGauges:
    @pytest.mark.parametrize("mmap", [False, pytest.param(True, marks=needs_numpy)])
    def test_load_info_and_span(self, saved_index, mmap):
        from repro.obs import Recorder, use_recorder

        _, path = saved_index
        recorder = Recorder()
        with use_recorder(recorder):
            loaded = ResolutionIndex.load(path, mmap=mmap)
        expected = {
            "mmap": mmap,
            "format_version": FORMAT_VERSION,
            "file_bytes": path.stat().st_size,
        }
        assert loaded.load_info == expected
        span = next(s for s in recorder.spans() if s.name == "index.load")
        for key, value in expected.items():
            assert span.attributes[key] == value

    def test_gauges_reach_prometheus(self, saved_index):
        from repro.obs import Recorder, use_recorder
        from repro.obs.prometheus import render_metrics

        _, path = saved_index
        recorder = Recorder()
        with use_recorder(recorder):
            ResolutionIndex.load(path)
        text = render_metrics(recorder)
        assert f"index_file_bytes {path.stat().st_size}" in text
        assert f"index_format_version {FORMAT_VERSION}" in text
        assert "index_mmap 0" in text


@needs_numpy
class TestMappedViews:
    @pytest.fixture
    def mapped(self, saved_index):
        index, path = saved_index
        return index, ResolutionIndex.load(path, mmap=True)

    def test_postings_view(self, mapped):
        index, loaded = mapped
        assert len(loaded.postings) == len(index.postings)
        assert list(loaded.postings) == sorted(index.postings)
        assert loaded.postings.total_entries() == sum(
            len(ids) for ids in index.postings.values()
        )
        some = sorted(index.postings)[0]
        assert list(loaded.postings[some]) == list(index.postings[some])
        assert loaded.postings.get("never-a-token", ()) == ()
        with pytest.raises(KeyError):
            loaded.postings["never-a-token"]
        assert "never-a-token" not in loaded.postings
        assert 42 not in loaded.postings  # non-str probes never match

    def test_weights_and_names_views(self, mapped):
        index, loaded = mapped
        assert dict(loaded.singleton_weights) == index.singleton_weights
        assert dict(loaded.names) == index.names
        some = next(iter(index.names))
        assert loaded.names[some] == index.names[some]
        assert isinstance(loaded.names[some], tuple)
        with pytest.raises(KeyError):
            loaded.names["￿ never a name"]

    def test_uris_view(self, mapped):
        index, loaded = mapped
        assert len(loaded.uris2) == len(index.uris2)
        assert list(loaded.uris2) == index.uris2
        assert loaded.uris2[-1] == index.uris2[-1]
        assert loaded.uris2[2:4] == index.uris2[2:4]
        with pytest.raises(IndexError):
            loaded.uris2[len(index.uris2)]

    def test_adjacency_view(self, mapped):
        index, loaded = mapped
        assert len(loaded.in_neighbors) == len(index.in_neighbors)
        assert list(loaded.in_neighbors.ids) == list(index.in_neighbors.ids)
        assert loaded.in_neighbors.to_lists() == index.in_neighbors.to_lists()
