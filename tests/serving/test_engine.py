"""MatchEngine behaviour: single/batch agreement, caching, counters."""

import math
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.config import MinoanERConfig
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.serving import LRUCache, MatchEngine, ResolutionIndex


@pytest.fixture(scope="module")
def mini_engine(mini_pair):
    index = ResolutionIndex.build(mini_pair.kb2)
    return MatchEngine(index)


class TestSingleEqualsBatchOfOne:
    def test_every_entity_agrees(self, mini_pair, mini_engine):
        for entity in mini_pair.kb1:
            single = mini_engine.match(entity)
            batched = mini_engine.match_batch([entity])
            assert len(batched) == 1
            assert single == batched[0], entity.uri

    def test_agreement_with_dynamic_pruning(self, mini_pair):
        index = ResolutionIndex.build(
            mini_pair.kb2, MinoanERConfig(dynamic_pruning=True)
        )
        engine = MatchEngine(index)
        for entity in list(mini_pair.kb1)[:25]:
            assert engine.match(entity) == engine.match_batch([entity])[0]

    def test_agreement_with_rules_disabled(self, mini_pair):
        index = ResolutionIndex.build(
            mini_pair.kb2,
            MinoanERConfig(use_name_rule=False, use_value_rule=False),
        )
        engine = MatchEngine(index)
        for entity in list(mini_pair.kb1)[:25]:
            assert engine.match(entity) == engine.match_batch([entity])[0]

    def test_agreement_without_reciprocity(self, mini_pair):
        index = ResolutionIndex.build(
            mini_pair.kb2, MinoanERConfig(use_reciprocity=False)
        )
        engine = MatchEngine(index)
        for entity in list(mini_pair.kb1)[:25]:
            assert engine.match(entity) == engine.match_batch([entity])[0]


class TestMatchSemantics:
    def test_exclusive_name_matches_by_r1(self):
        kb2 = KnowledgeBase(
            [EntityDescription("t1", [("label", "unique shared name")])], "t"
        )
        engine = MatchEngine(ResolutionIndex.build(kb2))
        decision = engine.match(
            EntityDescription("q", [("name", "unique shared name")])
        )
        assert decision.matched
        assert decision.kb2_uri == "t1"
        assert decision.rule == "R1"
        assert math.isinf(decision.score)

    def test_no_shared_tokens_means_no_match(self, mini_engine):
        decision = mini_engine.match(
            EntityDescription("q", [("label", "zzzzz-nonexistent-qqqq")])
        )
        assert not decision.matched
        assert decision.rule is None
        assert decision.score is None
        assert decision.candidates == 0

    def test_entity_without_literals(self, mini_engine):
        decision = mini_engine.match(EntityDescription("q", []))
        assert not decision.matched

    def test_empty_batch(self, mini_engine):
        assert mini_engine.match_batch([]) == []

    def test_empty_index(self):
        engine = MatchEngine(ResolutionIndex.build(KnowledgeBase([], "empty")))
        decision = engine.match(EntityDescription("q", [("a", "b")]))
        assert not decision.matched

    def test_decision_uris_consistent(self, mini_pair, mini_engine):
        for decision in mini_engine.match_batch(list(mini_pair.kb1)[:10]):
            if decision.matched:
                assert mini_engine.index.uris2[decision.kb2_id] == decision.kb2_uri


class TestCacheBehaviour:
    def test_second_lookup_is_a_hit(self, mini_pair):
        engine = MatchEngine(ResolutionIndex.build(mini_pair.kb2))
        entity = mini_pair.kb1[0]
        first = engine.match(entity)
        second = engine.match(entity)
        assert not first.cached
        assert second.cached
        assert first == second  # cached flag excluded from equality
        assert engine.cache.stats()["hits"] == 1

    def test_content_keyed_across_uris(self, mini_pair):
        engine = MatchEngine(ResolutionIndex.build(mini_pair.kb2))
        entity = mini_pair.kb1[0]
        engine.match(entity)
        twin = EntityDescription("different-uri", entity.pairs)
        decision = engine.match(twin)
        assert decision.cached
        assert decision.query_uri == "different-uri"

    def test_cache_disabled(self, mini_pair):
        config = MinoanERConfig(serving_cache_size=0)
        engine = MatchEngine(ResolutionIndex.build(mini_pair.kb2), config)
        entity = mini_pair.kb1[0]
        assert not engine.match(entity).cached
        assert not engine.match(entity).cached

    def test_batch_bypasses_cache(self, mini_pair):
        engine = MatchEngine(ResolutionIndex.build(mini_pair.kb2))
        entity = mini_pair.kb1[0]
        engine.match_batch([entity])
        assert len(engine.cache) == 0

    def test_external_cache_shared(self, mini_pair):
        index = ResolutionIndex.build(mini_pair.kb2)
        shared = LRUCache(16)
        first = MatchEngine(index, cache=shared)
        second = MatchEngine(index, cache=shared)
        entity = mini_pair.kb1[0]
        first.match(entity)
        assert second.match(entity).cached


class TestCandidateCap:
    def test_cap_bounds_candidates(self, mini_pair):
        capped = MatchEngine(
            ResolutionIndex.build(
                mini_pair.kb2, MinoanERConfig(serving_candidate_cap=3)
            )
        )
        for entity in list(mini_pair.kb1)[:20]:
            assert capped.match(entity).candidates <= 3

    def test_capped_single_equals_capped_batch(self, mini_pair):
        engine = MatchEngine(
            ResolutionIndex.build(
                mini_pair.kb2, MinoanERConfig(serving_candidate_cap=5)
            )
        )
        for entity in list(mini_pair.kb1)[:20]:
            assert engine.match(entity) == engine.match_batch([entity])[0]

    def test_generous_cap_changes_nothing(self, mini_pair):
        index = ResolutionIndex.build(mini_pair.kb2)
        exact = MatchEngine(index)
        capped = MatchEngine(
            index, index.config.with_options(serving_candidate_cap=10**6)
        )
        for entity in list(mini_pair.kb1)[:20]:
            mine, theirs = exact.match(entity), capped.match(entity)
            assert (mine.kb2_id, mine.rule, mine.score) == (
                theirs.kb2_id,
                theirs.rule,
                theirs.score,
            )


class TestStats:
    def test_counters_accumulate(self, mini_pair):
        engine = MatchEngine(ResolutionIndex.build(mini_pair.kb2))
        entities = list(mini_pair.kb1)[:6]
        for entity in entities[:3]:
            engine.match(entity)
        engine.match_batch(entities[3:])
        stats = engine.stats()
        assert stats["queries"] == 6
        assert stats["batches"] == 1
        assert stats["batch_queries"] == 3
        assert 0 <= stats["matched"] <= 6
        assert stats["latency_p50_ms"] >= 0
        assert stats["latency_p95_ms"] >= stats["latency_p50_ms"] or (
            stats["latency_p95_ms"] >= 0
        )
        assert stats["candidates_mean"] <= stats["candidates_max"]
        assert stats["cache"]["misses"] == 3

    def test_stats_thread_safe(self, mini_pair):
        engine = MatchEngine(ResolutionIndex.build(mini_pair.kb2))
        entities = list(mini_pair.kb1)

        def work(offset: int) -> None:
            for i in range(30):
                engine.match(entities[(offset + i) % len(entities)])

        with ThreadPoolExecutor(max_workers=6) as pool:
            for future in [pool.submit(work, w * 11) for w in range(6)]:
                future.result()
        stats = engine.stats()
        assert stats["queries"] == 180
        cache = stats["cache"]
        assert cache["hits"] + cache["misses"] == 180

    def test_repr(self, mini_pair):
        engine = MatchEngine(ResolutionIndex.build(mini_pair.kb2))
        assert "MatchEngine" in repr(engine)
        assert str(len(mini_pair.kb2)) in repr(engine)

    def test_metrics_land_in_ambient_recorder(self, mini_pair):
        from repro.obs import Recorder, use_recorder

        index = ResolutionIndex.build(mini_pair.kb2)
        recorder = Recorder()
        with use_recorder(recorder):
            engine = MatchEngine(index)
        entities = list(mini_pair.kb1)[:4]
        for entity in entities[:2]:
            engine.match(entity)
        engine.match_batch(entities[2:])
        assert engine.recorder is recorder
        counters = recorder.counters()
        assert counters["serving.queries"] == 4
        assert counters["serving.batches"] == 1
        assert counters["serving.batch_queries"] == 2
        assert counters["serving.cache.misses"] == 2
        assert recorder.histogram("serving.latency_ms").count == 3
        assert recorder.histogram("serving.candidates").count == 4
        # stats() is a derived view over the same recorder.
        assert engine.stats()["queries"] == 4

    def test_private_recorder_without_ambient(self, mini_pair):
        from repro.obs import NULL_RECORDER

        engine = MatchEngine(ResolutionIndex.build(mini_pair.kb2))
        assert engine.recorder is not NULL_RECORDER
        engine.match(next(iter(mini_pair.kb1)))
        assert engine.stats()["queries"] == 1
