"""`serve --metrics-port 0` reports the actually-bound ephemeral port.

The CLI must print the resolved port both on the ``# metrics at`` line
and inside the ``# index ...`` provenance line (which prints *after*
the endpoint binds), so supervisors tailing stderr can scrape the
endpoint without racing the bind.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import MinoanERConfig
from repro.serving import ResolutionIndex
from repro.serving.io import entity_to_json

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def run_serve(tmp_path, pair, extra_args=()):
    index = ResolutionIndex.build(pair.kb2, MinoanERConfig())
    index_path = tmp_path / "kb2.idx"
    index.save(index_path)
    queries = tmp_path / "queries.jsonl"
    with queries.open("w", encoding="utf-8") as handle:
        for entity in list(pair.kb1)[:3]:
            handle.write(json.dumps(entity_to_json(entity)) + "\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC)
    return subprocess.run(
        [
            sys.executable, "-m", "repro", "serve", str(index_path),
            "-i", str(queries), "--metrics-port", "0", *extra_args,
        ],
        capture_output=True, text=True, env=env, timeout=120,
    )


class TestEphemeralMetricsPort:
    def test_bound_port_in_provenance_line(self, mini_pair, tmp_path):
        proc = run_serve(tmp_path, mini_pair)
        assert proc.returncode == 0, proc.stderr

        index_line = next(
            line for line in proc.stderr.splitlines() if line.startswith("# index ")
        )
        metrics_line = next(
            line for line in proc.stderr.splitlines() if line.startswith("# metrics at ")
        )
        provenance_port = re.search(r"metrics port (\d+)", index_line)
        assert provenance_port, f"no metrics port in: {index_line}"
        endpoint_port = re.search(r"http://[^:]+:(\d+)/metrics", metrics_line)
        assert endpoint_port, f"no port in: {metrics_line}"

        port = int(provenance_port.group(1))
        assert port != 0, "ephemeral port must be resolved, not echoed"
        assert port == int(endpoint_port.group(1))

        # The stream itself is unaffected.
        decisions = [json.loads(line) for line in proc.stdout.splitlines()]
        assert len(decisions) == 3

    def test_no_metrics_flag_keeps_plain_provenance(self, mini_pair, tmp_path):
        index = ResolutionIndex.build(mini_pair.kb2, MinoanERConfig())
        index_path = tmp_path / "kb2.idx"
        index.save(index_path)
        queries = tmp_path / "queries.jsonl"
        queries.write_text(
            json.dumps(entity_to_json(list(mini_pair.kb1)[0])) + "\n",
            encoding="utf-8",
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", str(index_path), "-i", str(queries)],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        index_line = next(
            line for line in proc.stderr.splitlines() if line.startswith("# index ")
        )
        assert "metrics port" not in index_line
