"""Crash-safe ledger recovery: CRCs, torn tails, interior corruption.

The corpus here simulates every way an ``UpsertLedger`` file can come
back from a crash: truncated at each byte offset of its final record,
bit-flipped in the middle, written by the pre-CRC format, or damaged
in the interior.  The recovery contract under test:

* a *torn tail* (partial final record, the signature of a writer killed
  mid-append) is recoverable -- ``replay(recover=True)`` truncates it
  behind an fsync'd audit marker and replays the intact prefix;
* anything else (interior damage, CRC mismatch on a non-final record)
  is **always** fatal, in both modes: silent data loss is worse than a
  refused start.
"""

import json
import zlib

import pytest

from repro.kb.entity import EntityDescription
from repro.serving.live import LedgerError, UpsertLedger, record_crc


def entity(i: int) -> EntityDescription:
    return EntityDescription(
        f"http://kb2/e{i}", (("name", f"alpha{i}"), ("info", f"v{i}"))
    )


def build_ledger(path, events: int = 4) -> UpsertLedger:
    ledger = UpsertLedger(path)
    for i in range(events):
        ledger.append_upsert(entity(i))
    ledger.append_delete("http://kb2/e0")
    return ledger


class TestChecksums:
    def test_records_carry_crc32(self, tmp_path):
        ledger = build_ledger(tmp_path / "ops.jsonl", events=1)
        lines = ledger.path.read_text(encoding="utf-8").splitlines()
        for line in lines:
            record = json.loads(line)
            crc = record.pop("crc")
            body = json.dumps(
                record, separators=(",", ":"), sort_keys=True, ensure_ascii=False
            ).encode("utf-8")
            assert crc == zlib.crc32(body) & 0xFFFFFFFF

    def test_crc_is_key_order_independent(self, tmp_path):
        # Verification must survive a rewrite that reorders JSON keys.
        ledger = build_ledger(tmp_path / "ops.jsonl", events=2)
        shuffled = []
        for line in ledger.path.read_text(encoding="utf-8").splitlines():
            record = json.loads(line)
            shuffled.append(
                json.dumps({k: record[k] for k in sorted(record, reverse=True)})
            )
        ledger.path.write_text("\n".join(shuffled) + "\n", encoding="utf-8")
        assert len(list(UpsertLedger(ledger.path).replay())) == 3

    def test_crc_mismatch_is_fatal_in_both_modes(self, tmp_path):
        ledger = build_ledger(tmp_path / "ops.jsonl")
        lines = ledger.path.read_text(encoding="utf-8").splitlines()
        record = json.loads(lines[1])
        record["crc"] ^= 0x1  # bit-flip an interior record's checksum
        lines[1] = json.dumps(record)
        ledger.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        for recover in (False, True):
            with pytest.raises(LedgerError, match="CRC mismatch"):
                list(UpsertLedger(ledger.path).replay(recover=recover))

    def test_legacy_records_without_crc_still_replay(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text(
            '{"op": "delete", "uri": "http://kb2/e1"}\n'
            '{"op": "delete", "uri": "http://kb2/e2"}\n',
            encoding="utf-8",
        )
        ledger = UpsertLedger(path)
        assert len(list(ledger.replay())) == 2
        assert ledger.unverified == 2

    def test_record_crc_ignores_existing_crc_key(self):
        record = {"op": "delete", "uri": "e"}
        assert record_crc(record) == record_crc({**record, "crc": 123})


class TestTornTail:
    def test_truncation_at_every_byte_of_the_final_record(self, tmp_path):
        reference = build_ledger(tmp_path / "ref.jsonl")
        blob = reference.path.read_bytes()
        prefix_end = blob.rfind(b"\n", 0, len(blob) - 1) + 1
        intact = list(UpsertLedger(reference.path).replay())
        for cut in range(prefix_end + 1, len(blob)):
            path = tmp_path / f"cut{cut}.jsonl"
            path.write_bytes(blob[:cut])
            ledger = UpsertLedger(path)
            events = list(ledger.replay(recover=True))
            assert events == intact[:-1], f"cut at byte {cut}"
            assert ledger.recovered is not None
            assert ledger.recovered["dropped_bytes"] > 0

    def test_recover_false_raises_with_guidance(self, tmp_path):
        ledger = build_ledger(tmp_path / "ops.jsonl")
        blob = ledger.path.read_bytes()
        (tmp_path / "torn.jsonl").write_bytes(blob[:-4])
        with pytest.raises(LedgerError, match="recover=True"):
            list(UpsertLedger(tmp_path / "torn.jsonl").replay())

    def test_unterminated_but_parseable_tail_is_still_torn(self, tmp_path):
        # A final line missing its newline parses fine, but the next
        # append would fuse with it -- it must be truncated anyway.
        ledger = build_ledger(tmp_path / "ops.jsonl", events=1)
        blob = ledger.path.read_bytes()
        assert blob.endswith(b"\n")
        ledger.path.write_bytes(blob[:-1])
        recovered = UpsertLedger(ledger.path)
        events = list(recovered.replay(recover=True))
        assert len(events) == 1  # the delete at the tail was dropped
        assert recovered.recovered["reason"]

    def test_recovery_truncates_the_file_and_appends_a_marker(self, tmp_path):
        ledger = build_ledger(tmp_path / "ops.jsonl")
        blob = ledger.path.read_bytes()
        ledger.path.write_bytes(blob[:-3])
        recovered = UpsertLedger(ledger.path)
        list(recovered.replay(recover=True))
        lines = recovered.path.read_text(encoding="utf-8").splitlines()
        marker = json.loads(lines[-1])
        assert marker["op"] == "recover"
        # Cutting 3 bytes ate the newline plus 2 record bytes; the torn
        # tail is what was left of that final record.
        assert marker["dropped_bytes"] == len(blob.rstrip(b"\n").rsplit(b"\n", 1)[-1]) - 2
        assert isinstance(marker["crc"], int)

    def test_replay_after_recovery_is_idempotent(self, tmp_path):
        ledger = build_ledger(tmp_path / "ops.jsonl")
        blob = ledger.path.read_bytes()
        ledger.path.write_bytes(blob[:-5])
        first = list(UpsertLedger(ledger.path).replay(recover=True))
        again = UpsertLedger(ledger.path)
        # The file is now clean: strict replay succeeds, skips the
        # recovery marker, and yields the same events.
        assert list(again.replay()) == first
        assert again.recovered is None

    def test_appends_after_recovery_extend_the_clean_file(self, tmp_path):
        ledger = build_ledger(tmp_path / "ops.jsonl")
        blob = ledger.path.read_bytes()
        ledger.path.write_bytes(blob[:-5])
        survivor = UpsertLedger(ledger.path)
        list(survivor.replay(recover=True))
        survivor.append_delete("http://kb2/e7")
        events = list(UpsertLedger(ledger.path).replay())
        assert events[-1] == ("delete", "http://kb2/e7")

    def test_recovery_counts_on_the_recorder(self, tmp_path):
        from repro.obs import Recorder, use_recorder

        ledger = build_ledger(tmp_path / "ops.jsonl")
        blob = ledger.path.read_bytes()
        ledger.path.write_bytes(blob[:-2])
        recorder = Recorder()
        with use_recorder(recorder):
            list(UpsertLedger(ledger.path).replay(recover=True))
        assert recorder.counters()["ledger.recoveries"] == 1


class TestInteriorCorruption:
    @pytest.mark.parametrize("recover", [False, True])
    def test_interior_garbage_is_fatal(self, tmp_path, recover):
        ledger = build_ledger(tmp_path / "ops.jsonl")
        lines = ledger.path.read_text(encoding="utf-8").splitlines()
        lines[1] = "@@@ not json @@@"
        ledger.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(LedgerError, match="line 2"):
            list(UpsertLedger(ledger.path).replay(recover=recover))

    @pytest.mark.parametrize("recover", [False, True])
    def test_hole_before_valid_records_is_fatal(self, tmp_path, recover):
        # A truncated record *followed by more data* is not a torn tail:
        # something rewrote the middle of the file.
        ledger = build_ledger(tmp_path / "ops.jsonl")
        lines = ledger.path.read_text(encoding="utf-8").splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2]
        ledger.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(LedgerError):
            list(UpsertLedger(ledger.path).replay(recover=recover))
