"""Live index: delta segments, ledger, compaction, zero-drop swaps.

The load-bearing property throughout: an engine over base + delta
answers **bit-identically** to an engine over a full rebuild of the
same live entities -- the same contract every other serving layer
(mmap, sharding) already holds to.  The controlled KBs here keep every
edit relation-neutral (two literal attributes, globally distinct
values), which is the scope ``docs/live_index.md`` documents for exact
equivalence and byte-identical compaction.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.config import MinoanERConfig
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.serving import (
    IndexHandle,
    LedgerError,
    LiveEngine,
    LiveIndex,
    MatchEngine,
    ResolutionIndex,
    UpsertLedger,
)


def entity(i: int, word: str | None = None, info: str | None = None):
    """A relation-neutral KB2 entity with a unique name token."""
    word = word or f"alpha{i}"
    return EntityDescription(
        f"http://kb2/e{i}",
        [("name", f"{word} tag{i}"), ("info", info or f"extra{i} blob")],
    )


def build_index(entities, config=None):
    kb2 = KnowledgeBase(list(entities), name="kb2")
    return ResolutionIndex.build(kb2, config or MinoanERConfig())


def query(label: str, uri: str = "q"):
    return EntityDescription(uri, [("label", label)])


def decision_fields(decision):
    # ``kb2_id`` is deliberately absent: the overlay keeps base ids
    # (delta entities live above ``base.n2``) while a cold rebuild
    # renumbers, so ids legitimately differ.  The monotone-renumbering
    # argument guarantees the same *winner* -- URI, rule, score and
    # candidate count must all agree.
    return (
        decision.kb2_uri,
        decision.rule,
        decision.score,
        decision.candidates,
        decision.degraded,
    )


BASE = [entity(i) for i in range(8)]
CONFIG = MinoanERConfig()


# ----------------------------------------------------------------------
# Ledger
# ----------------------------------------------------------------------
class TestUpsertLedger:
    def test_roundtrip(self, tmp_path):
        ledger = UpsertLedger(tmp_path / "ops.jsonl")
        ledger.append_upsert(entity(99, "zeta99"))
        ledger.append_delete("http://kb2/e3")
        events = list(UpsertLedger(ledger.path).replay())
        assert [op for op, _ in events] == ["upsert", "delete"]
        assert events[0][1] == entity(99, "zeta99")
        assert events[1][1] == "http://kb2/e3"

    def test_missing_file_is_empty(self, tmp_path):
        assert list(UpsertLedger(tmp_path / "absent.jsonl").replay()) == []

    def test_clear_truncates(self, tmp_path):
        ledger = UpsertLedger(tmp_path / "ops.jsonl")
        ledger.append_delete("http://kb2/e1")
        ledger.clear()
        assert list(ledger.replay()) == []

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            '{"op": "merge"}',
            '{"op": "upsert"}',
            '{"op": "upsert", "entity": {"uri": "", "pairs": []}}',
            '{"op": "upsert", "entity": {"uri": "e", "pairs": [["a"]]}}',
            '{"op": "delete"}',
            '["op", "delete"]',
        ],
    )
    def test_bad_lines_raise_with_line_number(self, tmp_path, line):
        path = tmp_path / "ops.jsonl"
        path.write_text(
            '{"op": "delete", "uri": "http://kb2/e1"}\n' + line + "\n",
            encoding="utf-8",
        )
        with pytest.raises(LedgerError, match="line 2"):
            list(UpsertLedger(path).replay())

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        path.write_text(
            '\n{"op": "delete", "uri": "e"}\n\n', encoding="utf-8"
        )
        assert len(list(UpsertLedger(path).replay())) == 1


# ----------------------------------------------------------------------
# LiveIndex overlay semantics
# ----------------------------------------------------------------------
class TestLiveIndex:
    def test_fresh_overlay_matches_base(self):
        index = build_index(BASE)
        live = LiveIndex(index)
        assert live.n2 == index.n2
        assert live.id_space == index.n2
        assert not live.delta_active
        for token in index.postings:
            assert list(live.postings[token]) == list(index.postings[token])
            assert live.singleton_weights[token] == index.singleton_weights[token]

    def test_unaffected_token_posting_is_the_base_object(self):
        # Zero-copy: a token no edit touched must come back as the
        # base's own sequence, not a copy (mmap slices stay slices).
        live = LiveIndex(build_index(BASE))
        live.upsert(entity(99, "zeta99"))
        assert live.postings["alpha3"] is live.base.postings["alpha3"]

    def test_upsert_new_entity_extends_id_space(self):
        live = LiveIndex(build_index(BASE))
        eid = live.upsert(entity(99, "zeta99"))
        assert eid == 8
        assert live.n2 == 9
        assert live.id_space == 9
        assert live.uris2[eid] == "http://kb2/e99"
        assert list(live.postings["zeta99"]) == [8]
        assert live.entity_frequency("zeta99") == 1

    def test_upsert_shadows_base_entity_with_same_uri(self):
        live = LiveIndex(build_index(BASE))
        live.upsert(
            EntityDescription(
                "http://kb2/e3", [("name", "beta3 tag3x"), ("info", "changed")]
            )
        )
        assert live.n2 == 8  # replaced, not added
        assert live.id_space == 9
        assert 3 in live.delta.dead_base
        # The old tokens no longer reach e3; the new ones reach slot 0.
        assert 3 not in list(live.postings.get("alpha3", ()))
        assert list(live.postings["beta3"]) == [8]
        assert live.entity_frequency("alpha3") == 0

    def test_reupsert_tombstones_the_previous_slot(self):
        live = LiveIndex(build_index(BASE))
        first = live.upsert(entity(99, "zeta99"))
        second = live.upsert(entity(99, "eta99"))
        assert second == first + 1
        assert live.n2 == 9
        assert live.id_space == 10
        assert live.tombstone_count == 1
        assert live.entity_frequency("zeta99") == 0
        assert list(live.postings["eta99"]) == [second]

    def test_delete_base_and_delta(self):
        live = LiveIndex(build_index(BASE))
        assert live.delete("http://kb2/e5")
        assert live.n2 == 7
        assert not live.delete("http://kb2/e5")  # already dead
        eid = live.upsert(entity(99, "zeta99"))
        assert live.delete("http://kb2/e99")
        assert live.n2 == 7
        assert live.entity_frequency("zeta99") == 0
        assert not live.delete("http://kb2/nonesuch")
        assert eid not in list(live.postings.get("zeta99", ()))

    def test_live_weights_follow_live_ef(self):
        from repro.kernels import block_weight

        base = [entity(i, "shared") for i in range(4)]
        live = LiveIndex(build_index(base))
        assert live.singleton_weights["shared"] == block_weight(4)
        live.delete("http://kb2/e0")
        assert live.singleton_weights["shared"] == block_weight(3)
        live.upsert(entity(9, "shared"))
        live.upsert(entity(10, "shared"))
        assert live.singleton_weights["shared"] == block_weight(5)

    def test_names_shadow_and_extend(self):
        live = LiveIndex(build_index(BASE))
        assert live.names["alpha3 tag3"] == (3,)
        live.upsert(
            EntityDescription(
                "http://kb2/e3", [("name", "beta3 tag3x"), ("info", "z")]
            )
        )
        assert "alpha3 tag3" not in live.names
        assert live.names["beta3 tag3x"] == (8,)

    def test_in_neighbors_masks_dead_and_extends(self):
        live = LiveIndex(build_index(BASE))
        live.upsert(entity(99, "zeta99"))
        live.delete("http://kb2/e2")
        csr = live.in_neighbors
        assert len(csr) == live.id_space
        assert list(csr.neighbors(2)) == []
        assert list(csr.neighbors(8)) == []

    def test_refuses_shard_bases(self):
        from repro.sharding import ShardPlanner

        shard = ShardPlanner(2).plan(build_index(BASE))[0]
        with pytest.raises(ValueError, match="not a shard"):
            LiveIndex(shard)

    def test_apply_unknown_op_raises(self):
        live = LiveIndex(build_index(BASE))
        with pytest.raises(ValueError, match="unknown live-index op"):
            live.apply("merge", "x")

    def test_describe_reports_delta(self):
        live = LiveIndex(build_index(BASE))
        live.upsert(entity(99, "zeta99"))
        live.delete("http://kb2/e1")
        summary = live.describe()
        assert summary["entities"] == 8
        assert summary["delta"] == {
            "entities": 1,
            "allocated": 1,
            "dead_base": 1,
            "tombstones": 1,
        }


# ----------------------------------------------------------------------
# Rebuild equivalence + compaction
# ----------------------------------------------------------------------
def final_entities():
    """BASE after: delete e5, overwrite e3, add e99 -- rebuild order."""
    survivors = [entity(i) for i in range(8) if i not in (3, 5)]
    return survivors + [
        entity(99, "zeta99"),
        EntityDescription(
            "http://kb2/e3", [("name", "beta3 tag3x"), ("info", "changed")]
        ),
    ]


def edited_live_engine(mmap: bool, tmp_path, cache=None):
    index = build_index(BASE)
    if mmap:
        index.save(tmp_path / "base.idx")
        index = ResolutionIndex.load(tmp_path / "base.idx", mmap=True)
    engine = LiveEngine(index, CONFIG, cache=cache)
    engine.delete("http://kb2/e5")
    engine.upsert(entity(99, "zeta99"))
    engine.upsert(
        EntityDescription(
            "http://kb2/e3", [("name", "beta3 tag3x"), ("info", "changed")]
        )
    )
    return engine


PROBES = (
    [query(f"alpha{i} tag{i}", uri=f"q{i}") for i in range(8)]
    + [
        query("zeta99 tag99", uri="qnew"),
        query("beta3 tag3x", uri="qover"),
        query("unmatched nonsense", uri="qmiss"),
    ]
)


class TestRebuildEquivalence:
    @pytest.mark.parametrize("mmap", [False, True])
    def test_single_decisions_equal_cold_rebuild(self, mmap, tmp_path):
        live = edited_live_engine(mmap, tmp_path)
        cold = MatchEngine(build_index(final_entities()), CONFIG)
        for probe in PROBES:
            a, b = live.match(probe), cold.match(probe)
            assert decision_fields(a) == decision_fields(b), probe.uri

    @pytest.mark.parametrize("mmap", [False, True])
    def test_batch_decisions_equal_cold_rebuild(self, mmap, tmp_path):
        live = edited_live_engine(mmap, tmp_path)
        cold = MatchEngine(build_index(final_entities()), CONFIG)
        ours = live.match_batch(PROBES)
        theirs = cold.match_batch(PROBES)
        assert [decision_fields(d) for d in ours] == [
            decision_fields(d) for d in theirs
        ]

    def test_compaction_bytes_equal_cold_build(self, tmp_path):
        live = edited_live_engine(False, tmp_path)
        compacted = tmp_path / "compacted.idx"
        rebuilt = tmp_path / "rebuilt.idx"
        live.index.compact().save(compacted)
        build_index(final_entities()).save(rebuilt)
        assert compacted.read_bytes() == rebuilt.read_bytes()

    def test_compaction_of_clean_overlay_is_identity(self, tmp_path):
        index = build_index(BASE)
        a, b = tmp_path / "a.idx", tmp_path / "b.idx"
        LiveIndex(index).compact().save(a)
        index.save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_compact_then_load_serves_identically(self, tmp_path):
        live = edited_live_engine(False, tmp_path)
        before = [live.match(probe) for probe in PROBES]
        target = tmp_path / "kb2.idx"
        live.compact(target)
        assert not live.index.delta_active
        after = [live.match(probe) for probe in PROBES]
        reloaded = MatchEngine(ResolutionIndex.load(target), CONFIG)
        independent = [reloaded.match(probe) for probe in PROBES]
        for x, y, z in zip(before, after, independent):
            assert decision_fields(x) == decision_fields(y) == decision_fields(z)


# ----------------------------------------------------------------------
# IndexHandle
# ----------------------------------------------------------------------
class TestIndexHandle:
    def test_pins_are_concurrent(self):
        handle = IndexHandle()
        entered = threading.Barrier(3, timeout=5.0)

        def pinned():
            with handle.pin():
                entered.wait()

        with ThreadPoolExecutor(3) as pool:
            list(pool.map(lambda _: pinned(), range(3)))

    def test_exclusive_waits_for_pins_and_blocks_new_ones(self):
        handle = IndexHandle()
        order: list[str] = []
        pin_entered = threading.Event()
        release_pin = threading.Event()

        def reader():
            with handle.pin():
                pin_entered.set()
                release_pin.wait(timeout=5.0)
                order.append("reader-done")

        def writer():
            pin_entered.wait(timeout=5.0)
            with handle.exclusive():
                order.append("writer")
                handle.bump()

        threads = [threading.Thread(target=reader), threading.Thread(target=writer)]
        for thread in threads:
            thread.start()
        pin_entered.wait(timeout=5.0)
        release_pin.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert order == ["reader-done", "writer"]
        assert handle.generation == 1

    def test_generation_stable_within_a_pin(self):
        handle = IndexHandle(generation=7)
        with handle.pin() as generation:
            assert generation == 7

    def test_drain_hammer(self):
        # Readers and writers interleave heavily; invariants: the
        # generation only moves inside exclusive sections, and a pinned
        # read never observes a torn (mid-mutation) value pair.
        handle = IndexHandle()
        state = {"value": 0, "generation": 0}
        stop = threading.Event()
        errors: list[str] = []

        def reader():
            while not stop.is_set():
                with handle.pin():
                    if state["value"] != state["generation"]:
                        errors.append(
                            f"torn read {state['value']} != {state['generation']}"
                        )

        def writer():
            for _ in range(200):
                with handle.exclusive():
                    state["value"] += 1
                    state["generation"] += 1
                    handle.bump()

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        writer_thread.join(timeout=30.0)
        stop.set()
        for thread in readers:
            thread.join(timeout=5.0)
        assert not errors
        assert handle.generation == 200


# ----------------------------------------------------------------------
# LiveEngine serving behaviours
# ----------------------------------------------------------------------
class TestLiveEngine:
    def test_generation_keyed_cache_never_serves_stale(self):
        engine = LiveEngine(build_index(BASE), CONFIG)
        probe = query("alpha3 tag3")
        first = engine.match(probe)
        assert first.kb2_uri == "http://kb2/e3"
        cached = engine.match(probe)
        assert cached.cached
        engine.delete("http://kb2/e3")
        after = engine.match(probe)
        assert not after.cached
        assert after.kb2_uri != "http://kb2/e3"

    def test_swap_invalidates_cached_answers(self, tmp_path):
        target = tmp_path / "kb2.idx"
        build_index(BASE).save(target)
        engine = LiveEngine(ResolutionIndex.load(target), CONFIG)
        engine.index_path = target
        probe = query("alpha3 tag3")
        engine.match(probe)
        # A new index (without e3) arrives on disk; reload must not
        # let the pre-swap cached decision survive.
        build_index([e for e in BASE if e.uri != "http://kb2/e3"]).save(
            tmp_path / "next.idx"
        )
        generation = engine.reload(tmp_path / "next.idx")
        assert generation == engine.generation == engine.handle.generation
        after = engine.match(probe)
        assert not after.cached
        assert after.kb2_uri != "http://kb2/e3"

    def test_upserts_append_to_attached_ledger(self, tmp_path):
        ledger = UpsertLedger(tmp_path / "ops.jsonl")
        engine = LiveEngine(build_index(BASE), CONFIG)
        engine.attach_ledger(ledger)
        engine.upsert(entity(99, "zeta99"))
        engine.delete("http://kb2/e5")
        engine.delete("http://kb2/nonesuch")  # no-op: not recorded
        events = list(UpsertLedger(ledger.path).replay())
        assert [op for op, _ in events] == ["upsert", "delete"]

    def test_ledger_replay_recovers_state(self, tmp_path):
        ledger_path = tmp_path / "ops.jsonl"
        first = LiveEngine(build_index(BASE), CONFIG)
        first.attach_ledger(UpsertLedger(ledger_path))
        first.upsert(entity(99, "zeta99"))
        first.delete("http://kb2/e5")

        second = LiveEngine(build_index(BASE), CONFIG)
        replayed = second.attach_ledger(UpsertLedger(ledger_path))
        assert replayed == 2
        for probe in PROBES:
            assert decision_fields(second.match(probe)) == decision_fields(
                first.match(probe)
            ), probe.uri
        # Replay does not re-append: the ledger still has 2 events.
        assert len(list(UpsertLedger(ledger_path).replay())) == 2

    def test_compact_truncates_ledger_and_survives_restart(self, tmp_path):
        target = tmp_path / "kb2.idx"
        build_index(BASE).save(target)
        engine = LiveEngine(ResolutionIndex.load(target), CONFIG)
        engine.index_path = target
        engine.attach_ledger(UpsertLedger(tmp_path / "ops.jsonl"))
        engine.upsert(entity(99, "zeta99"))
        engine.compact()
        assert list(UpsertLedger(tmp_path / "ops.jsonl").replay()) == []
        # A restart over the compacted file + empty ledger sees the edit.
        fresh = LiveEngine(ResolutionIndex.load(target), CONFIG)
        fresh.attach_ledger(UpsertLedger(tmp_path / "ops.jsonl"))
        assert fresh.match(query("zeta99 tag99")).kb2_uri == "http://kb2/e99"

    def test_mutations_refresh_gauges_and_stats(self):
        engine = LiveEngine(build_index(BASE), CONFIG)
        engine.upsert(entity(99, "zeta99"))
        engine.upsert(entity(99, "eta99"))
        engine.delete("http://kb2/e5")
        gauges = engine.recorder.gauges()
        assert gauges["index.generation"] == 3
        assert gauges["live.delta_entities"] == 1
        assert gauges["live.tombstones"] == 2
        live = engine.stats()["live"]
        assert live["generation"] == 3
        assert live["upserts"] == 2
        assert live["deletes"] == 1
        assert live["swaps"] == 0

    def test_provenance_carries_generation(self):
        config = CONFIG.with_options(provenance_sample_rate=1.0)
        engine = LiveEngine(build_index(BASE), config)
        engine.upsert(entity(99, "zeta99"))
        decision = engine.match(query("zeta99 tag99"))
        assert decision.provenance is not None
        assert decision.provenance.generation == 1
        assert json.loads(json.dumps(decision.provenance.to_json()))[
            "generation"
        ] == 1

    def test_reload_without_a_path_raises(self):
        engine = LiveEngine(build_index(BASE), CONFIG)
        with pytest.raises(ValueError, match="index path"):
            engine.reload()

    def test_swap_hammer_zero_drop(self, tmp_path):
        # Queries stream from 4 threads while compactions (each a full
        # drain + flip) run in between; every query must come back with
        # a correct, never-stale answer and nothing may error.
        target = tmp_path / "kb2.idx"
        build_index(BASE).save(target)
        engine = LiveEngine(ResolutionIndex.load(target), CONFIG)
        engine.index_path = target
        errors: list[str] = []
        stop = threading.Event()
        probe = query("alpha1 tag1")

        def querier():
            while not stop.is_set():
                try:
                    decision = engine.match(probe)
                except Exception as error:  # noqa: BLE001 - the test asserts
                    errors.append(repr(error))
                    return
                if decision.kb2_uri != "http://kb2/e1":
                    errors.append(f"wrong answer {decision.kb2_uri}")
                    return

        threads = [threading.Thread(target=querier) for _ in range(4)]
        for thread in threads:
            thread.start()
        for round_number in range(5):
            engine.upsert(entity(90 + round_number, f"omega{round_number}"))
            engine.compact()
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors
        assert engine.swap_count == 5
        assert not engine.index.delta_active
