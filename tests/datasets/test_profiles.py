"""Unit tests for the four calibrated benchmark profiles."""

import pytest

from repro.datasets.profiles import PROFILES, load_profile, profile_names, scaled_profile


class TestRegistry:
    def test_four_profiles_in_paper_order(self):
        assert profile_names() == [
            "restaurant",
            "rexa_dblp",
            "bbc_dbpedia",
            "yago_imdb",
        ]

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError, match="unknown profile"):
            load_profile("wikipedia")

    def test_specs_named_after_keys(self):
        for name, spec in PROFILES.items():
            assert spec.name == name


class TestLoading:
    def test_overrides_apply(self):
        pair = load_profile("restaurant", n_matches=10, extras1=2, extras2=3)
        assert len(pair.ground_truth) == 10
        assert len(pair.kb1) == 12

    def test_seed_override_changes_data(self):
        first = load_profile("restaurant", seed=1, n_matches=20, extras1=0, extras2=0)
        second = load_profile("restaurant", seed=2, n_matches=20, extras1=0, extras2=0)
        assert [e.pairs for e in first.kb1] != [e.pairs for e in second.kb1]

    def test_scaled_profile_shrinks_population(self):
        pair = scaled_profile("restaurant", 0.2)
        full = PROFILES["restaurant"]
        assert len(pair.ground_truth) == int(full.n_matches * 0.2)

    def test_scaled_profile_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scaled_profile("restaurant", 0.0)


class TestProfileRegimes:
    """The calibrated characteristics the experiments rely on."""

    def test_restaurant_is_small_and_imbalanced(self):
        spec = PROFILES["restaurant"]
        assert spec.n_matches + spec.extras1 < 500
        assert spec.extras2 > 5 * spec.extras1

    def test_rexa_dblp_heavily_imbalanced(self):
        spec = PROFILES["rexa_dblp"]
        size1 = spec.n_matches + spec.extras1
        size2 = spec.n_matches + spec.extras2
        assert size2 > 8 * size1

    def test_bbc_dbpedia_high_variety(self):
        spec = PROFILES["bbc_dbpedia"]
        assert spec.content_attributes2 > 10 * spec.content_attributes1
        assert spec.noise_tokens2 > 2 * spec.noise_tokens1
        assert spec.decoy_name_attribute
        assert not spec.exact_shared_values2
        assert spec.titlecase_values2

    def test_yago_imdb_low_value_similarity_regime(self):
        spec = PROFILES["yago_imdb"]
        assert spec.shared_fraction1 < 0.7
        assert spec.distractor_rate >= 0.9
        assert spec.franchise_rate > 0.5

    def test_profiles_generate(self):
        # smoke: a downscaled instance of each profile generates cleanly
        for name in profile_names():
            pair = scaled_profile(name, 0.05, seed=11)
            assert len(pair.ground_truth) > 0
            assert len(pair.kb1) >= len({a for a, _ in pair.ground_truth})
