"""Unit tests for the synthetic KB-pair generator."""

import pytest

from repro.blocking.name_blocking import normalize_name
from repro.datasets.generator import KBPair, ProfileSpec, generate_kb_pair
from repro.kb.statistics import KBStatistics


def small_spec(**overrides) -> ProfileSpec:
    base = dict(
        name="t",
        seed=5,
        n_matches=40,
        extras1=10,
        extras2=20,
        core_tokens=6,
        medium_vocab=300,
    )
    base.update(overrides)
    return ProfileSpec(**base)


class TestBasicShape:
    def test_sizes(self):
        pair = generate_kb_pair(small_spec())
        assert len(pair.kb1) == 50
        assert len(pair.kb2) == 60
        assert len(pair.ground_truth) == 40

    def test_reproducible(self):
        first = generate_kb_pair(small_spec())
        second = generate_kb_pair(small_spec())
        assert [e.pairs for e in first.kb1] == [e.pairs for e in second.kb1]
        assert first.ground_truth == second.ground_truth

    def test_different_seed_different_data(self):
        first = generate_kb_pair(small_spec(seed=1))
        second = generate_kb_pair(small_spec(seed=2))
        assert [e.pairs for e in first.kb1] != [e.pairs for e in second.kb1]

    def test_ground_truth_ids_valid(self):
        pair = generate_kb_pair(small_spec())
        for eid1, eid2 in pair.ground_truth:
            assert 0 <= eid1 < len(pair.kb1)
            assert 0 <= eid2 < len(pair.kb2)

    def test_uri_ground_truth(self):
        pair = generate_kb_pair(small_spec(n_matches=3, extras1=0, extras2=0))
        for uri1, uri2 in pair.uri_ground_truth:
            assert uri1.startswith("kb1:")
            assert uri2.startswith("kb2:")

    def test_relation_alignment_oracle(self):
        pair = generate_kb_pair(small_spec(relation_types=2))
        assert pair.relation_alignment == {
            "voc10:rel1_0": "voc20:rel2_0",
            "voc10:rel1_1": "voc20:rel2_1",
        }

    def test_repr(self):
        pair = generate_kb_pair(small_spec())
        assert "matches=40" in repr(pair)


class TestNameModel:
    @staticmethod
    def shared_name_fraction(pair: KBPair) -> float:
        shared = 0
        for eid1, eid2 in pair.ground_truth:
            names1 = {normalize_name(v) for v in pair.kb1[eid1].values_of("voc1:label")}
            names2 = {normalize_name(v) for v in pair.kb2[eid2].values_of("voc2:name")}
            if names1 & names2:
                shared += 1
        return shared / len(pair.ground_truth)

    def test_name_overlap_controls_exact_sharing(self):
        high = generate_kb_pair(small_spec(n_matches=200, name_overlap=0.9))
        low = generate_kb_pair(small_spec(n_matches=200, name_overlap=0.3))
        assert self.shared_name_fraction(high) == pytest.approx(0.9, abs=0.08)
        assert self.shared_name_fraction(low) == pytest.approx(0.3, abs=0.08)

    def test_decoy_name_attribute_tops_importance(self):
        pair = generate_kb_pair(small_spec(decoy_name_attribute=True, name_overlap=0.7))
        stats = KBStatistics(pair.kb2, top_k_name_attributes=1)
        assert stats.name_attributes == ("voc20:id",)

    def test_alias_attribute_present(self):
        pair = generate_kb_pair(small_spec(alias_coverage1=1.0))
        entity = pair.kb1[0]
        assert entity.values_of("voc10:alias") == entity.values_of("voc1:label")

    def test_name_collisions_break_exclusivity(self):
        pair = generate_kb_pair(
            small_spec(n_matches=100, extras2=200, name_collision_rate=0.9)
        )
        names2 = [pair.kb2[eid].values_of("voc2:name")[0] for eid in range(len(pair.kb2))]
        assert len(set(names2)) < len(names2)


class TestContentModel:
    def test_exact_shared_values_produce_equal_literals(self):
        pair = generate_kb_pair(
            small_spec(shared_fraction1=1.0, shared_fraction2=1.0, noise_tokens1=0, noise_tokens2=0)
        )
        eid1, eid2 = next(iter(pair.ground_truth))
        values1 = set(pair.kb1.literal_values(eid1))
        values2 = set(pair.kb2.literal_values(eid2))
        # all core chunks rendered on both sides: several exact overlaps
        assert len(values1 & values2) >= 2

    def test_token_soup_breaks_exact_equality_keeps_tokens(self):
        pair = generate_kb_pair(
            small_spec(
                exact_shared_values2=False,
                shared_fraction1=1.0,
                shared_fraction2=1.0,
            )
        )
        eid1, eid2 = next(iter(pair.ground_truth))
        tokens1 = pair.kb1.tokens(eid1)
        tokens2 = pair.kb2.tokens(eid2)
        assert len(tokens1 & tokens2) >= 3

    def test_titlecase_values(self):
        pair = generate_kb_pair(small_spec(titlecase_values2=True))
        values = [v for eid in range(5) for v in pair.kb2.literal_values(eid)]
        assert all(v == v.title() for v in values)

    def test_rare_tokens_count(self):
        pair = generate_kb_pair(small_spec(rare_tokens=0))
        rare = [t for t in pair.kb1.tokens(0) if t.startswith("rare")]
        assert rare == []


class TestDistractorsAndFranchises:
    def test_distractors_steal_tokens(self):
        spec = small_spec(
            n_matches=50,
            extras2=100,
            distractor_rate=1.0,
            distractor_share=1.0,
            shared_fraction1=1.0,
            shared_fraction2=1.0,
        )
        pair = generate_kb_pair(spec)
        # every extra2 is a distractor: it must share medium tokens with
        # some match entity in KB1
        match_tokens = set()
        for eid1, _ in pair.ground_truth:
            match_tokens |= {t for t in pair.kb1.tokens(eid1) if t.startswith("med")}
        extras = [eid for eid in range(len(pair.kb2)) if not any(eid == b for _, b in pair.ground_truth)]
        stealing = sum(
            1
            for eid in extras
            if {t for t in pair.kb2.tokens(eid) if t.startswith("med")} & match_tokens
        )
        assert stealing > len(extras) * 0.6

    def test_franchises_share_tokens_across_matches(self):
        spec = small_spec(
            n_matches=60,
            franchise_rate=1.0,
            franchise_size=3,
            franchise_tokens=3,
            shared_fraction1=1.0,
        )
        pair = generate_kb_pair(spec)
        franchise_tokens = [
            t for eid in range(len(pair.kb1)) for t in pair.kb1.tokens(eid) if t.startswith("fran")
        ]
        assert franchise_tokens
        from collections import Counter

        counts = Counter(franchise_tokens)
        assert max(counts.values()) >= 2  # shared by group members

    def test_junk_coverage_zero_removes_junk_relations(self):
        pair = generate_kb_pair(small_spec(junk_coverage=0.0))
        assert not any("junk" in r for r in pair.kb1.relation_names())
