"""Property-based tests of the synthetic generator's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.generator import ProfileSpec, generate_kb_pair


@st.composite
def small_specs(draw):
    return ProfileSpec(
        name="prop",
        seed=draw(st.integers(0, 10_000)),
        n_matches=draw(st.integers(1, 25)),
        extras1=draw(st.integers(0, 10)),
        extras2=draw(st.integers(0, 15)),
        core_tokens=draw(st.integers(1, 8)),
        rare_tokens=draw(st.integers(0, 2)),
        shared_fraction1=draw(st.floats(0.2, 1.0)),
        shared_fraction2=draw(st.floats(0.2, 1.0)),
        noise_tokens1=draw(st.integers(0, 4)),
        noise_tokens2=draw(st.integers(0, 4)),
        medium_vocab=draw(st.integers(20, 200)),
        name_overlap=draw(st.floats(0.0, 1.0)),
        name_collision_rate=draw(st.floats(0.0, 0.3)),
        distractor_rate=draw(st.floats(0.0, 1.0)),
        distractor_steal_rare=draw(st.floats(0.0, 1.0)),
        distractor_steal_name=draw(st.floats(0.0, 1.0)),
        franchise_rate=draw(st.floats(0.0, 1.0)),
        franchise_size=draw(st.integers(2, 4)),
        relation_types=draw(st.integers(0, 3)),
        out_degree=draw(st.floats(0.0, 3.0)),
        junk_relations=draw(st.integers(0, 2)),
        junk_coverage=draw(st.floats(0.0, 1.0)),
        exact_shared_values2=draw(st.booleans()),
        titlecase_values2=draw(st.booleans()),
        decoy_name_attribute=draw(st.booleans()),
    )


class TestGeneratorInvariants:
    @given(spec=small_specs())
    @settings(max_examples=40, deadline=None)
    def test_population_accounting(self, spec):
        pair = generate_kb_pair(spec)
        assert len(pair.kb1) == spec.n_matches + spec.extras1
        assert len(pair.kb2) == spec.n_matches + spec.extras2
        assert len(pair.ground_truth) == spec.n_matches

    @given(spec=small_specs())
    @settings(max_examples=40, deadline=None)
    def test_ground_truth_is_a_bijection_sample(self, spec):
        pair = generate_kb_pair(spec)
        lefts = [a for a, _ in pair.ground_truth]
        rights = [b for _, b in pair.ground_truth]
        assert len(lefts) == len(set(lefts))
        assert len(rights) == len(set(rights))
        for eid1, eid2 in pair.ground_truth:
            assert 0 <= eid1 < len(pair.kb1)
            assert 0 <= eid2 < len(pair.kb2)

    @given(spec=small_specs())
    @settings(max_examples=40, deadline=None)
    def test_determinism(self, spec):
        first = generate_kb_pair(spec)
        second = generate_kb_pair(spec)
        assert [e.pairs for e in first.kb1] == [e.pairs for e in second.kb1]
        assert [e.pairs for e in first.kb2] == [e.pairs for e in second.kb2]

    @given(spec=small_specs())
    @settings(max_examples=40, deadline=None)
    def test_every_entity_has_a_name(self, spec):
        pair = generate_kb_pair(spec)
        for kb, attribute in ((pair.kb1, spec.name_attribute1), (pair.kb2, spec.name_attribute2)):
            for entity in kb.entities:
                assert entity.values_of(attribute)

    @given(spec=small_specs())
    @settings(max_examples=40, deadline=None)
    def test_relations_stay_within_kb(self, spec):
        pair = generate_kb_pair(spec)
        for kb in (pair.kb1, pair.kb2):
            for eid in range(len(kb)):
                for _, target in kb.relations(eid):
                    assert 0 <= target < len(kb)
                    assert target != eid

    @given(spec=small_specs())
    @settings(max_examples=40, deadline=None)
    def test_alignment_mentions_only_real_relations(self, spec):
        pair = generate_kb_pair(spec)
        names1 = pair.kb1.relation_names() | {f"voc10:rel1_{r}" for r in range(spec.relation_types)}
        for left, right in pair.relation_alignment.items():
            assert left.startswith("voc10:rel1_")
            assert right.startswith("voc20:rel2_")
