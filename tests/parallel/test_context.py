"""Unit tests for the parallel execution context and simulated cluster."""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Recorder, use_recorder
from repro.parallel.context import (
    ParallelContext,
    simulated_makespan,
    split_into_partitions,
)


def double_chunk(chunk):
    return [2 * x for x in chunk]


def failing_chunk(chunk):
    # Module-level so the process backend can pickle it.
    raise RuntimeError(f"partition with {chunk!r} failed")


def fail_first_else_sleep(chunk):
    if 0 in chunk:
        raise RuntimeError("first partition failed")
    time.sleep(0.05)
    return chunk


class TestPartitioning:
    def test_balanced_split(self):
        assert split_into_partitions([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]

    def test_more_partitions_than_items(self):
        assert split_into_partitions([1], 4) == [[1]]

    def test_empty(self):
        assert split_into_partitions([], 3) == []

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            split_into_partitions([1], 0)

    @given(items=st.lists(st.integers(), max_size=50), partitions=st.integers(1, 10))
    @settings(max_examples=80)
    def test_partitions_cover_and_balance(self, items, partitions):
        chunks = split_into_partitions(items, partitions)
        flattened = [x for chunk in chunks for x in chunk]
        assert flattened == items
        if chunks:
            sizes = [len(c) for c in chunks]
            assert max(sizes) - min(sizes) <= 1
            assert all(sizes)


class TestContext:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backends_agree(self, backend):
        with ParallelContext(num_workers=2, backend=backend) as context:
            results = context.run_stage("double", list(range(20)), double_chunk)
        merged = [x for chunk in results for x in chunk]
        assert merged == [2 * x for x in range(20)]

    def test_stage_log_records(self):
        with ParallelContext() as context:
            context.run_stage("alpha", [1, 2], double_chunk)
            context.run_stage("alpha2", [1], double_chunk)
        assert [record.name for record in context.stage_log] == ["alpha", "alpha2"]
        assert context.stage_seconds("alpha") >= context.stage_seconds("alpha2")

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_all_backends_time_partitions(self, backend):
        with ParallelContext(num_workers=2, backend=backend) as context:
            context.run_stage("s", list(range(8)), double_chunk)
        record = context.stage_log[0]
        assert len(record.partition_seconds) == record.partitions
        assert all(seconds >= 0.0 for seconds in record.partition_seconds)
        assert record.failed is False
        assert record.cancelled == 0

    def test_explicit_partition_count(self):
        with ParallelContext(num_workers=1) as context:
            results = context.run_stage("s", list(range(10)), double_chunk, partitions=5)
        assert len(results) == 5

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ParallelContext(num_workers=0)
        with pytest.raises(ValueError):
            ParallelContext(backend="gpu")
        with pytest.raises(ValueError):
            ParallelContext(tasks_per_worker=0)

    def test_shutdown_idempotent(self):
        context = ParallelContext(num_workers=2, backend="thread")
        context.shutdown()
        context.shutdown()


class TestStageFailure:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_failure_propagates_and_is_recorded(self, backend):
        with ParallelContext(num_workers=2, backend=backend) as context:
            with pytest.raises(RuntimeError, match="failed"):
                context.run_stage("boom", list(range(8)), failing_chunk)
            # The stage must still be logged, flagged as failed.
            assert [record.name for record in context.stage_log] == ["boom"]
            record = context.stage_log[0]
            assert record.failed is True
            assert record.seconds >= 0.0
            # Later stages append normally after a failure.
            context.run_stage("after", [1, 2], double_chunk)
            assert context.stage_log[-1].name == "after"
            assert context.stage_log[-1].failed is False

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pending_siblings_cancelled(self, backend):
        # One worker, many partitions: the first partition fails
        # immediately while the rest are still queued, so the driver
        # must be able to cancel pending siblings instead of running
        # them all.
        with ParallelContext(num_workers=1, backend=backend) as context:
            with pytest.raises(RuntimeError, match="first partition"):
                context.run_stage(
                    "boom",
                    list(range(20)),
                    fail_first_else_sleep,
                    partitions=20,
                )
            record = context.stage_log[0]
            assert record.failed is True
            assert record.cancelled >= 1

    def test_failed_stage_span_has_error_status(self):
        recorder = Recorder()
        with use_recorder(recorder):
            with ParallelContext(num_workers=2, backend="serial") as context:
                with pytest.raises(RuntimeError):
                    context.run_stage("boom", [1, 2], failing_chunk)
        stage_spans = [s for s in recorder.spans() if s.name == "stage:boom"]
        assert len(stage_spans) == 1
        assert stage_spans[0].status == "error"


class TestStageTracing:
    def test_stage_and_partition_spans(self):
        recorder = Recorder()
        with use_recorder(recorder):
            with ParallelContext(num_workers=2, backend="thread") as context:
                context.run_stage("double", list(range(8)), double_chunk)
        stage = next(s for s in recorder.spans() if s.name == "stage:double")
        assert stage.attributes["backend"] == "thread"
        partitions = [
            s for s in recorder.spans() if s.name.startswith("double:partition-")
        ]
        assert len(partitions) == stage.attributes["partitions"]
        assert all(s.parent_id == stage.span_id for s in partitions)

    def test_explicit_recorder_wins_over_ambient(self):
        explicit = Recorder()
        ambient = Recorder()
        with use_recorder(ambient):
            with ParallelContext(num_workers=1, recorder=explicit) as context:
                context.run_stage("s", [1, 2], double_chunk)
        assert any(s.name == "stage:s" for s in explicit.spans())
        assert ambient.spans() == []


class TestSimulatedMakespan:
    def test_perfect_split(self):
        assert simulated_makespan([1.0, 1.0], 2, 0.0, 0.0) == pytest.approx(1.0)

    def test_single_worker_sums(self):
        assert simulated_makespan([1.0, 2.0, 3.0], 1, 0.0, 0.0) == pytest.approx(6.0)

    def test_straggler_bounds_makespan(self):
        assert simulated_makespan([10.0, 0.1, 0.1], 4, 0.0, 0.0) == pytest.approx(10.0)

    def test_overheads_added(self):
        value = simulated_makespan([1.0], 1, task_overhead=0.5, barrier_overhead=0.25)
        assert value == pytest.approx(1.75)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            simulated_makespan([1.0], 0)

    @given(
        times=st.lists(st.floats(0.001, 5.0), min_size=1, max_size=20),
        workers=st.integers(1, 8),
    )
    @settings(max_examples=80)
    def test_monotone_in_workers_and_bounded(self, times, workers):
        one = simulated_makespan(times, 1, 0.0, 0.0)
        many = simulated_makespan(times, workers, 0.0, 0.0)
        assert many <= one + 1e-9
        assert many >= max(times) - 1e-9
        assert many >= sum(times) / workers - 1e-9
