"""Unit tests for the parallel execution context and simulated cluster."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.context import (
    ParallelContext,
    simulated_makespan,
    split_into_partitions,
)


def double_chunk(chunk):
    return [2 * x for x in chunk]


class TestPartitioning:
    def test_balanced_split(self):
        assert split_into_partitions([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]

    def test_more_partitions_than_items(self):
        assert split_into_partitions([1], 4) == [[1]]

    def test_empty(self):
        assert split_into_partitions([], 3) == []

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            split_into_partitions([1], 0)

    @given(items=st.lists(st.integers(), max_size=50), partitions=st.integers(1, 10))
    @settings(max_examples=80)
    def test_partitions_cover_and_balance(self, items, partitions):
        chunks = split_into_partitions(items, partitions)
        flattened = [x for chunk in chunks for x in chunk]
        assert flattened == items
        if chunks:
            sizes = [len(c) for c in chunks]
            assert max(sizes) - min(sizes) <= 1
            assert all(sizes)


class TestContext:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backends_agree(self, backend):
        with ParallelContext(num_workers=2, backend=backend) as context:
            results = context.run_stage("double", list(range(20)), double_chunk)
        merged = [x for chunk in results for x in chunk]
        assert merged == [2 * x for x in range(20)]

    def test_stage_log_records(self):
        with ParallelContext() as context:
            context.run_stage("alpha", [1, 2], double_chunk)
            context.run_stage("alpha2", [1], double_chunk)
        assert [record.name for record in context.stage_log] == ["alpha", "alpha2"]
        assert context.stage_seconds("alpha") >= context.stage_seconds("alpha2")

    def test_serial_backend_times_partitions(self):
        with ParallelContext(num_workers=4) as context:
            context.run_stage("s", list(range(8)), double_chunk)
        record = context.stage_log[0]
        assert len(record.partition_seconds) == record.partitions

    def test_explicit_partition_count(self):
        with ParallelContext(num_workers=1) as context:
            results = context.run_stage("s", list(range(10)), double_chunk, partitions=5)
        assert len(results) == 5

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ParallelContext(num_workers=0)
        with pytest.raises(ValueError):
            ParallelContext(backend="gpu")
        with pytest.raises(ValueError):
            ParallelContext(tasks_per_worker=0)

    def test_shutdown_idempotent(self):
        context = ParallelContext(num_workers=2, backend="thread")
        context.shutdown()
        context.shutdown()


class TestSimulatedMakespan:
    def test_perfect_split(self):
        assert simulated_makespan([1.0, 1.0], 2, 0.0, 0.0) == pytest.approx(1.0)

    def test_single_worker_sums(self):
        assert simulated_makespan([1.0, 2.0, 3.0], 1, 0.0, 0.0) == pytest.approx(6.0)

    def test_straggler_bounds_makespan(self):
        assert simulated_makespan([10.0, 0.1, 0.1], 4, 0.0, 0.0) == pytest.approx(10.0)

    def test_overheads_added(self):
        value = simulated_makespan([1.0], 1, task_overhead=0.5, barrier_overhead=0.25)
        assert value == pytest.approx(1.75)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            simulated_makespan([1.0], 0)

    @given(
        times=st.lists(st.floats(0.001, 5.0), min_size=1, max_size=20),
        workers=st.integers(1, 8),
    )
    @settings(max_examples=80)
    def test_monotone_in_workers_and_bounded(self, times, workers):
        one = simulated_makespan(times, 1, 0.0, 0.0)
        many = simulated_makespan(times, workers, 0.0, 0.0)
        assert many <= one + 1e-9
        assert many >= max(times) - 1e-9
        assert many >= sum(times) / workers - 1e-9
