"""Tests for the stage-parallel pipeline: identical output to serial."""

import pytest

from repro.core.config import MinoanERConfig
from repro.core.pipeline import MinoanER
from repro.parallel.context import ParallelContext
from repro.parallel.pipeline import ParallelMinoanER


class TestEquivalence:
    @pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 3)])
    def test_matches_identical_to_serial(self, mini_pair, backend, workers):
        serial = MinoanER().resolve(mini_pair.kb1, mini_pair.kb2)
        with ParallelContext(num_workers=workers, backend=backend) as context:
            parallel = ParallelMinoanER(context=context).resolve(
                mini_pair.kb1, mini_pair.kb2
            )
        assert parallel.matches == serial.matches
        assert parallel.matching.rule_of == serial.matching.rule_of

    def test_process_backend_identical(self, mini_pair):
        serial = MinoanER().resolve(mini_pair.kb1, mini_pair.kb2)
        with ParallelContext(num_workers=2, backend="process") as context:
            parallel = ParallelMinoanER(context=context).resolve(
                mini_pair.kb1, mini_pair.kb2
            )
        assert parallel.matches == serial.matches

    def test_identical_on_hard_pair(self, hard_pair):
        config = MinoanERConfig(theta=0.5)
        serial = MinoanER(config).resolve(hard_pair.kb1, hard_pair.kb2)
        with ParallelContext(num_workers=4, backend="thread") as context:
            parallel = ParallelMinoanER(config, context).resolve(
                hard_pair.kb1, hard_pair.kb2
            )
        assert parallel.matches == serial.matches

    @pytest.mark.parametrize("kernel_backend", ["python", "numpy"])
    def test_array_partition_kernels_bit_identical(self, mini_pair, kernel_backend):
        """The array partition kernels must reproduce the dict partition
        kernels exactly -- same partials per partition, hence a
        bit-identical merged graph under the same partitioning."""
        if kernel_backend == "numpy":
            pytest.importorskip("numpy")
        with ParallelContext(num_workers=3, backend="thread") as context:
            dict_result = ParallelMinoanER(
                MinoanERConfig(kernel_backend="dict"), context
            ).resolve(mini_pair.kb1, mini_pair.kb2)
        with ParallelContext(num_workers=3, backend="thread") as context:
            kernel_result = ParallelMinoanER(
                MinoanERConfig(kernel_backend=kernel_backend), context
            ).resolve(mini_pair.kb1, mini_pair.kb2)
        assert kernel_result.graph.identical(dict_result.graph)
        assert kernel_result.matches == dict_result.matches

    def test_ablations_identical(self, mini_pair):
        for overrides in (
            {"use_reciprocity": False},
            {"use_neighbor_evidence": False},
            {"use_name_rule": False},
            {"use_value_rule": False, "use_rank_aggregation": False},
        ):
            config = MinoanERConfig(**overrides)
            serial = MinoanER(config).resolve(mini_pair.kb1, mini_pair.kb2)
            with ParallelContext(num_workers=3, backend="serial") as context:
                parallel = ParallelMinoanER(config, context).resolve(
                    mini_pair.kb1, mini_pair.kb2
                )
            assert parallel.matches == serial.matches, overrides


class TestStageStructure:
    def test_figure4_stages_present(self, mini_pair):
        with ParallelContext(num_workers=2) as context:
            ParallelMinoanER(context=context).resolve(mini_pair.kb1, mini_pair.kb2)
        names = {record.name for record in context.stage_log}
        assert "graph:beta" in names
        assert "graph:gamma" in names
        assert "match:R2" in names
        assert "match:R3_side1" in names
        assert "match:R3_side2" in names

    def test_timings_cover_phases(self, mini_pair):
        with ParallelContext(num_workers=2) as context:
            result = ParallelMinoanER(context=context).resolve(
                mini_pair.kb1, mini_pair.kb2
            )
        assert set(result.timings) == {
            "statistics",
            "blocking",
            "graph",
            "matching",
            "total",
        }


class TestTracing:
    def test_every_stage_becomes_a_span(self, mini_pair):
        from repro.obs import Recorder, use_recorder

        recorder = Recorder()
        with use_recorder(recorder):
            with ParallelContext(num_workers=2, backend="thread") as context:
                ParallelMinoanER(context=context).resolve(
                    mini_pair.kb1, mini_pair.kb2
                )
        names = recorder.span_names()
        # Every logged stage has a "stage:<name>" span with one child
        # span per partition.
        for record in context.stage_log:
            assert f"stage:{record.name}" in names
            stage = next(
                s for s in recorder.spans() if s.name == f"stage:{record.name}"
            )
            children = [
                s for s in recorder.spans() if s.parent_id == stage.span_id
            ]
            assert len(children) == record.partitions
        # Phase spans wrap the stages.
        for phase in ("resolve", "statistics", "blocking", "graph", "matching"):
            assert phase in names

    def test_matches_identical_with_tracing_enabled(self, mini_pair):
        from repro.obs import Recorder, use_recorder

        serial = MinoanER().resolve(mini_pair.kb1, mini_pair.kb2)
        with use_recorder(Recorder()):
            with ParallelContext(num_workers=3, backend="thread") as context:
                parallel = ParallelMinoanER(context=context).resolve(
                    mini_pair.kb1, mini_pair.kb2
                )
        assert parallel.matches == serial.matches
