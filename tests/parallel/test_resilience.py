"""Failure handling in ParallelContext and the stage-parallel pipeline."""

import pytest

from repro.core.config import MinoanERConfig
from repro.core.pipeline import MinoanER
from repro.obs import Recorder, use_recorder
from repro.parallel.context import ParallelContext
from repro.parallel.pipeline import ParallelMinoanER
from repro.resilience import (
    FaultInjected,
    RetryPolicy,
    parse_chaos,
    use_faults,
)


def double_chunk(chunk):
    return [value * 2 for value in chunk]


def reject_negatives(chunk):
    if any(value < 0 for value in chunk):
        raise ValueError("negative input")
    return list(chunk)


def fast_policy(max_attempts: int = 3) -> RetryPolicy:
    return RetryPolicy(max_attempts=max_attempts, base_delay_s=0.0, jitter_ratio=0.0)


class TestRunStageRetry:
    @pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 2)])
    def test_transient_faults_recovered(self, backend, workers):
        plan = parse_chaos("stage:double=error*2")
        recorder = Recorder()
        with ParallelContext(
            num_workers=workers,
            backend=backend,
            failure_mode="retry",
            retry_policy=fast_policy(),
        ) as context:
            with use_recorder(recorder), use_faults(plan):
                results = context.run_stage(
                    "double", list(range(6)), double_chunk, partitions=3
                )
        assert sorted(value for chunk in results for value in chunk) == [
            0, 2, 4, 6, 8, 10,
        ]
        (record,) = context.stage_log
        assert record.retries == 2
        assert record.skipped == ()
        assert not record.failed
        assert recorder.counter_value("retry.attempts") == 2
        assert plan.total_fired() == 2

    def test_exhausted_retry_budget_fails_the_stage(self):
        plan = parse_chaos("stage:double=error*5")
        with ParallelContext(
            failure_mode="retry", retry_policy=fast_policy(max_attempts=2)
        ) as context:
            with use_faults(plan), pytest.raises(FaultInjected):
                context.run_stage("double", list(range(4)), double_chunk, partitions=2)
        (record,) = context.stage_log
        assert record.failed
        assert record.retries == 1

    def test_fail_fast_propagates_the_first_fault(self):
        plan = parse_chaos("stage:double=error*1")
        with ParallelContext() as context:  # fail_fast default
            with use_faults(plan), pytest.raises(FaultInjected):
                context.run_stage("double", list(range(4)), double_chunk, partitions=2)
        (record,) = context.stage_log
        assert record.failed
        assert record.retries == 0


class TestRunStageDegrade:
    def test_exhausted_partitions_are_skipped_and_recorded(self):
        # Serial draws lazily per attempt: budget of 4 faults at 2
        # attempts per partition exhausts partitions 0 and 1; partition
        # 2 survives untouched.
        plan = parse_chaos("stage:double=error*4")
        recorder = Recorder()
        with ParallelContext(
            failure_mode="degrade", retry_policy=fast_policy(max_attempts=2)
        ) as context:
            with use_recorder(recorder), use_faults(plan):
                results = context.run_stage(
                    "double", list(range(6)), double_chunk, partitions=3
                )
        assert results == [[8, 10]]  # only partition 2's chunk [4, 5]
        (record,) = context.stage_log
        assert record.skipped == (0, 1)
        assert record.retries == 2
        assert not record.failed
        assert recorder.counter_value("stage.skipped") == 2
        assert recorder.counter_value("retry.attempts") == 2

    def test_thread_backend_draws_at_submission_deterministically(self):
        # The pooled backends draw one fault per *submission*, in
        # partition order: the first three faults land on the initial
        # submissions of partitions 0-2, the fourth on partition 0's
        # retry, which exhausts only partition 0.  Deterministic, just a
        # different (documented) draw order than serial's lazy draws.
        plan = parse_chaos("stage:double=error*4")
        with ParallelContext(
            num_workers=2,
            backend="thread",
            failure_mode="degrade",
            retry_policy=fast_policy(max_attempts=2),
        ) as context:
            with use_faults(plan):
                results = context.run_stage(
                    "double", list(range(6)), double_chunk, partitions=3
                )
        assert results == [[4, 6], [8, 10]]
        (record,) = context.stage_log
        assert record.skipped == (0,)
        assert record.retries == 3
        assert plan.exhausted()

    def test_non_retryable_error_skips_without_retrying(self):
        recorder = Recorder()
        with ParallelContext(
            failure_mode="degrade", retry_policy=fast_policy()
        ) as context:
            with use_recorder(recorder):
                results = context.run_stage(
                    "filter", [1, 2, -3, 4], reject_negatives, partitions=4
                )
        assert results == [[1], [2], [4]]
        (record,) = context.stage_log
        assert record.skipped == (2,)
        assert record.retries == 0
        assert recorder.counter_value("retry.attempts") == 0

    def test_degrade_without_policy_skips_on_first_failure(self):
        plan = parse_chaos("stage:double=error*1")
        with ParallelContext(failure_mode="degrade") as context:
            with use_faults(plan):
                results = context.run_stage(
                    "double", [1, 2], double_chunk, partitions=2
                )
        assert results == [[4]]
        assert context.stage_log[0].skipped == (0,)


class TestLifecycle:
    def test_context_manager_shuts_down_the_pool(self):
        with ParallelContext(num_workers=2, backend="thread") as context:
            assert context._executor is not None
        assert context._executor is None

    def test_close_is_idempotent(self):
        context = ParallelContext(num_workers=2, backend="thread")
        context.close()
        context.close()
        assert context._executor is None

    def test_invalid_failure_mode_rejected(self):
        with pytest.raises(ValueError, match="failure_mode"):
            ParallelContext(failure_mode="explode")

    def test_pipeline_owns_and_closes_a_self_made_context(self):
        config = MinoanERConfig(failure_mode="retry")
        with ParallelMinoanER(config) as pipeline:
            assert pipeline.context.failure_mode == "retry"
            assert pipeline.context.retry_policy is not None
        # Self-created contexts are serial (no pool), so close() is
        # observable only through idempotence; a borrowed context must
        # survive the pipeline's close.
        with ParallelContext(num_workers=2, backend="thread") as borrowed:
            ParallelMinoanER(context=borrowed).close()
            assert borrowed._executor is not None


class TestPipelineFailureModes:
    def test_retry_recovers_bit_identically(self, mini_pair):
        # The bit-identity baseline is a clean run of the *same*
        # parallel shape (partitioned float sums differ from serial in
        # the last ULP); the serial run pins the match set.
        serial = MinoanER().resolve(mini_pair.kb1, mini_pair.kb2)
        with ParallelContext(num_workers=2, backend="thread") as context:
            clean = ParallelMinoanER(context=context).resolve(
                mini_pair.kb1, mini_pair.kb2
            )
        plan = parse_chaos("stage:*=error*2")
        recorder = Recorder()
        with ParallelContext(
            num_workers=2,
            backend="thread",
            failure_mode="retry",
            retry_policy=fast_policy(),
        ) as context:
            with use_recorder(recorder), use_faults(plan):
                result = ParallelMinoanER(context=context).resolve(
                    mini_pair.kb1, mini_pair.kb2
                )
        assert plan.total_fired() == 2
        assert recorder.counter_value("retry.attempts") == 2
        assert not result.is_degraded
        assert result.matches == serial.matches
        assert result.matches == clean.matches
        assert result.matching.rule_of == clean.matching.rule_of
        assert result.matching.scores == clean.matching.scores

    def test_degrade_names_the_skipped_partitions(self, mini_pair):
        plan = parse_chaos("stage:graph:beta=error*4")
        recorder = Recorder()
        with ParallelContext(
            num_workers=2,
            backend="thread",
            failure_mode="degrade",
            retry_policy=fast_policy(max_attempts=1),
        ) as context:
            with use_recorder(recorder), use_faults(plan):
                result = ParallelMinoanER(context=context).resolve(
                    mini_pair.kb1, mini_pair.kb2
                )
        assert result.is_degraded
        assert set(result.degraded) == {"graph:beta"}
        skipped = result.degraded["graph:beta"]
        assert len(skipped) == 4
        assert recorder.counter_value("stage.skipped") == 4
        beta_record = next(
            record for record in context.stage_log if record.name == "graph:beta"
        )
        assert beta_record.skipped == skipped

    def test_fail_fast_pipeline_propagates(self, mini_pair):
        plan = parse_chaos("stage:graph:beta=error*1")
        with ParallelContext(num_workers=2, backend="thread") as context:
            with use_faults(plan), pytest.raises(FaultInjected):
                ParallelMinoanER(context=context).resolve(
                    mini_pair.kb1, mini_pair.kb2
                )
