"""Parity test: RDD-style token blocking equals the index-based one."""

import pytest

from repro.blocking.token_blocking import token_blocks
from repro.parallel.context import ParallelContext
from repro.parallel.rdd_blocking import token_blocks_rdd


def as_mapping(collection):
    return {block.key: (block.side1, block.side2) for block in collection}


class TestRDDBlockingParity:
    @pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 3), ("process", 2)])
    def test_equals_index_based_blocking(self, mini_pair, backend, workers):
        reference = as_mapping(token_blocks(mini_pair.kb1, mini_pair.kb2))
        with ParallelContext(num_workers=workers, backend=backend) as context:
            derived = as_mapping(token_blocks_rdd(context, mini_pair.kb1, mini_pair.kb2))
        assert derived == reference

    def test_stage_names_recorded(self, mini_pair):
        with ParallelContext(num_workers=2) as context:
            token_blocks_rdd(context, mini_pair.kb1, mini_pair.kb2)
        names = {record.name for record in context.stage_log}
        assert "blocking:emit_tokens" in names
        assert "blocking:group_tokens" in names

    def test_figure1_example(self, restaurant_kbs):
        kb1, kb2 = restaurant_kbs
        with ParallelContext(num_workers=2) as context:
            derived = as_mapping(token_blocks_rdd(context, kb1, kb2))
        assert derived == as_mapping(token_blocks(kb1, kb2))
