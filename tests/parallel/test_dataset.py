"""Unit tests for the RDD-style Dataset API."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.context import ParallelContext
from repro.parallel.dataset import Dataset


def is_even(x):
    return x % 2 == 0


def add_one(x):
    return x + 1


def explode(x):
    return [x, x]


def plus(a, b):
    return a + b


@pytest.fixture
def context():
    with ParallelContext(num_workers=2) as ctx:
        yield ctx


class TestNarrowTransformations:
    def test_map(self, context):
        data = Dataset.from_iterable(context, range(10))
        assert sorted(data.map(add_one).collect()) == list(range(1, 11))

    def test_filter(self, context):
        data = Dataset.from_iterable(context, range(10))
        assert sorted(data.filter(is_even).collect()) == [0, 2, 4, 6, 8]

    def test_flat_map(self, context):
        data = Dataset.from_iterable(context, [1, 2])
        assert sorted(data.flat_map(explode).collect()) == [1, 1, 2, 2]

    def test_map_partitions(self, context):
        data = Dataset.from_iterable(context, range(10), num_partitions=2)
        sums = data.map_partitions(lambda chunk: [sum(chunk)]).collect()
        assert sum(sums) == sum(range(10))

    def test_source_unchanged(self, context):
        data = Dataset.from_iterable(context, range(5))
        data.map(add_one)
        assert sorted(data.collect()) == list(range(5))


class TestWideTransformations:
    def test_reduce_by_key(self, context):
        data = Dataset.from_iterable(
            context, [("a", 1), ("b", 2), ("a", 3), ("b", 4), ("c", 5)]
        )
        result = dict(data.reduce_by_key(plus).collect())
        assert result == {"a": 4, "b": 6, "c": 5}

    def test_group_by_key(self, context):
        data = Dataset.from_iterable(context, [("a", 1), ("a", 2), ("b", 3)])
        grouped = {k: sorted(v) for k, v in data.group_by_key().collect()}
        assert grouped == {"a": [1, 2], "b": [3]}

    def test_join(self, context):
        left = Dataset.from_iterable(context, [("a", 1), ("b", 2)])
        right = Dataset.from_iterable(context, [("a", 10), ("c", 30)])
        assert left.join(right).collect() == [("a", (1, 10))]

    def test_join_cross_product_per_key(self, context):
        left = Dataset.from_iterable(context, [("a", 1), ("a", 2)])
        right = Dataset.from_iterable(context, [("a", 10), ("a", 20)])
        assert len(left.join(right).collect()) == 4


class TestActions:
    def test_count(self, context):
        assert Dataset.from_iterable(context, range(7)).count() == 7

    def test_reduce(self, context):
        assert Dataset.from_iterable(context, [1, 2, 3]).reduce(plus) == 6

    def test_reduce_empty_raises(self, context):
        with pytest.raises(ValueError):
            Dataset.from_iterable(context, []).reduce(plus)

    def test_num_partitions(self, context):
        data = Dataset.from_iterable(context, range(10), num_partitions=3)
        assert data.num_partitions() == 3


class TestSemanticsProperties:
    @given(items=st.lists(st.integers(-50, 50), max_size=40))
    @settings(max_examples=50)
    def test_map_filter_match_builtin_semantics(self, items):
        with ParallelContext(num_workers=3) as context:
            data = Dataset.from_iterable(context, items)
            mapped = sorted(data.map(add_one).collect())
            filtered = sorted(data.filter(is_even).collect())
        assert mapped == sorted(x + 1 for x in items)
        assert filtered == sorted(x for x in items if x % 2 == 0)

    @given(
        pairs=st.lists(
            st.tuples(st.sampled_from("abcd"), st.integers(-9, 9)), max_size=30
        )
    )
    @settings(max_examples=50)
    def test_reduce_by_key_matches_reference(self, pairs):
        reference: dict[str, int] = {}
        for key, value in pairs:
            reference[key] = reference.get(key, 0) + value
        with ParallelContext(num_workers=3) as context:
            result = dict(
                Dataset.from_iterable(context, pairs).reduce_by_key(plus).collect()
            )
        assert result == reference
