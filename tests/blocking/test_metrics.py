"""Unit tests for blocking quality metrics (Table 2 numbers)."""

import pytest

from repro.blocking.base import Block, BlockCollection
from repro.blocking.metrics import BlockingReport, evaluate_blocks


class TestBlockingReport:
    def test_recall(self):
        report = BlockingReport(2, 100, 80, 8, 10)
        assert report.recall == pytest.approx(0.8)

    def test_precision_counts_per_block_occurrence(self):
        report = BlockingReport(2, 100, 80, 8, 10)
        assert report.precision == pytest.approx(8 / 100)

    def test_f1(self):
        report = BlockingReport(1, 10, 10, 5, 5)
        precision, recall = 0.5, 1.0
        assert report.f1 == pytest.approx(2 * precision * recall / (precision + recall))

    def test_zero_divisions(self):
        empty = BlockingReport(0, 0, 0, 0, 0)
        assert empty.recall == 0.0
        assert empty.precision == 0.0
        assert empty.f1 == 0.0


class TestEvaluateBlocks:
    def test_coverage_and_counts(self):
        blocks = BlockCollection(
            [Block("x", [0, 1], [0]), Block("y", [1], [1])]
        )
        report = evaluate_blocks([blocks], ground_truth={(0, 0), (1, 1), (2, 2)})
        assert report.matches_covered == 2
        assert report.total_matches == 3
        assert report.total_comparisons == 3
        assert report.distinct_pairs == 3
        assert report.num_blocks == 2

    def test_union_of_collections(self):
        names = BlockCollection([Block("n", [0], [0])], kind="name")
        tokens = BlockCollection([Block("t", [1], [1])], kind="token")
        report = evaluate_blocks([names, tokens], ground_truth={(0, 0), (1, 1)})
        assert report.recall == 1.0
        assert report.num_blocks == 2

    def test_duplicate_pair_counted_once_for_recall(self):
        blocks = BlockCollection([Block("a", [0], [0]), Block("b", [0], [0])])
        report = evaluate_blocks([blocks], ground_truth={(0, 0)})
        assert report.matches_covered == 1
        assert report.total_comparisons == 2  # per-occurrence, like ||B||
        assert report.distinct_pairs == 1
