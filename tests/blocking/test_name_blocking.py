"""Unit tests for name blocking and name normalisation."""

from repro.blocking.name_blocking import name_blocks, normalize_name
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.statistics import KBStatistics


class TestNormalizeName:
    def test_lowercases_and_trims(self):
        assert normalize_name("  J. Lake ") == "j. lake"

    def test_collapses_internal_whitespace(self):
        assert normalize_name("John\t  Lake") == "john lake"

    def test_empty(self):
        assert normalize_name("   ") == ""


def stats_for(values: list[str], prefix: str) -> KBStatistics:
    kb = KnowledgeBase(
        [EntityDescription(f"{prefix}{i}", [("name", v)]) for i, v in enumerate(values)],
        name=prefix,
    )
    return KBStatistics(kb, top_k_name_attributes=1)


class TestNameBlocks:
    def test_shared_names_block_together(self):
        blocks = name_blocks(stats_for(["J. Lake"], "a"), stats_for(["j. lake"], "b"))
        assert len(blocks) == 1
        assert blocks[0].is_singleton_pair

    def test_unshared_names_make_no_blocks(self):
        blocks = name_blocks(stats_for(["alpha"], "a"), stats_for(["beta"], "b"))
        assert len(blocks) == 0

    def test_non_exclusive_name_not_singleton(self):
        blocks = name_blocks(
            stats_for(["same name", "same name"], "a"), stats_for(["same name"], "b")
        )
        assert len(blocks) == 1
        assert not blocks[0].is_singleton_pair

    def test_empty_names_ignored(self):
        blocks = name_blocks(stats_for(["  "], "a"), stats_for(["  "], "b"))
        assert len(blocks) == 0

    def test_entity_listed_once_per_block_despite_alias(self):
        kb1 = KnowledgeBase(
            [EntityDescription("a0", [("name", "X Y"), ("alias", "X Y")])], name="a"
        )
        kb2 = KnowledgeBase(
            [EntityDescription("b0", [("name", "x y"), ("alias", "x y")])], name="b"
        )
        stats1 = KBStatistics(kb1, top_k_name_attributes=2)
        stats2 = KBStatistics(kb2, top_k_name_attributes=2)
        blocks = name_blocks(stats1, stats2)
        assert len(blocks) == 1
        assert blocks[0].is_singleton_pair  # deduplicated within the entity

    def test_blocks_sorted_by_name(self):
        blocks = name_blocks(
            stats_for(["zz", "aa"], "a"), stats_for(["aa", "zz"], "b")
        )
        assert [b.key for b in blocks] == ["aa", "zz"]
