"""Unit tests for MinHash LSH blocking."""

import pytest

from repro.blocking.lsh import MinHasher, lsh_blocks, lsh_threshold
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase


def kb_of(values: list[str], prefix: str) -> KnowledgeBase:
    return KnowledgeBase(
        [EntityDescription(f"{prefix}{i}", [("v", v)]) for i, v in enumerate(values)],
        name=prefix,
    )


class TestMinHasher:
    def test_identical_sets_identical_signatures(self):
        hasher = MinHasher(16)
        tokens = frozenset({"a", "b", "c"})
        assert hasher.signature(tokens) == hasher.signature(frozenset(tokens))

    def test_deterministic_across_instances(self):
        tokens = frozenset({"x", "y"})
        assert MinHasher(8, seed=3).signature(tokens) == MinHasher(8, seed=3).signature(tokens)

    def test_different_seeds_differ(self):
        tokens = frozenset({"x", "y"})
        assert MinHasher(8, seed=1).signature(tokens) != MinHasher(8, seed=2).signature(tokens)

    def test_empty_set_sentinel(self):
        signature = MinHasher(4).signature(frozenset())
        assert len(set(signature)) == 1

    def test_similar_sets_share_components(self):
        hasher = MinHasher(64)
        base = frozenset(f"t{i}" for i in range(20))
        near = frozenset(list(base)[:18] + ["x1", "x2"])
        far = frozenset(f"u{i}" for i in range(20))
        shared_near = sum(
            a == b for a, b in zip(hasher.signature(base), hasher.signature(near))
        )
        shared_far = sum(
            a == b for a, b in zip(hasher.signature(base), hasher.signature(far))
        )
        assert shared_near > shared_far


class TestLSHBlocks:
    def test_identical_entities_always_blocked(self):
        kb1 = kb_of(["alpha beta gamma delta"], "a")
        kb2 = kb_of(["alpha beta gamma delta"], "b")
        blocks = lsh_blocks(kb1, kb2, bands=8, rows=2)
        assert (0, 0) in blocks.distinct_pairs()

    def test_dissimilar_entities_rarely_blocked(self):
        kb1 = kb_of(["alpha beta gamma delta"], "a")
        kb2 = kb_of(["epsilon zeta eta theta"], "b")
        blocks = lsh_blocks(kb1, kb2, bands=4, rows=8)
        assert (0, 0) not in blocks.distinct_pairs()

    def test_threshold_formula(self):
        assert lsh_threshold(1, 1) == pytest.approx(1.0)
        assert lsh_threshold(16, 4) == pytest.approx((1 / 16) ** 0.25)

    def test_more_bands_more_candidates(self):
        kb1 = kb_of(["a b c d e f g h", "p q r s t u v w"], "x")
        kb2 = kb_of(["a b c d m n o z", "p q r s m n o z"], "y")
        few = lsh_blocks(kb1, kb2, bands=2, rows=8).distinct_pairs()
        many = lsh_blocks(kb1, kb2, bands=32, rows=1).distinct_pairs()
        assert len(many) >= len(few)

    def test_invalid_parameters(self):
        kb = kb_of(["x"], "a")
        with pytest.raises(ValueError):
            lsh_blocks(kb, kb, bands=0)

    def test_reproducible(self):
        kb1 = kb_of(["a b c", "d e f"], "x")
        kb2 = kb_of(["a b d", "g h i"], "y")
        first = lsh_blocks(kb1, kb2).distinct_pairs()
        second = lsh_blocks(kb1, kb2).distinct_pairs()
        assert first == second
