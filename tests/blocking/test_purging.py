"""Unit tests for comparison-budget Block Purging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.base import Block, BlockCollection
from repro.blocking.purging import MIN_BUDGET, purge_blocks, purging_threshold


def collection_of(shapes: list[tuple[int, int]]) -> BlockCollection:
    blocks = []
    for index, (n1, n2) in enumerate(shapes):
        blocks.append(Block(f"b{index}", list(range(n1)), list(range(n2))))
    return BlockCollection(blocks)


class TestThreshold:
    def test_keeps_everything_under_budget(self):
        blocks = collection_of([(1, 1), (1, 2), (2, 2)])
        assert purging_threshold(blocks, cartesian=10_000, budget_ratio=0.01) == 4

    def test_drops_oversized_levels(self):
        blocks = collection_of([(1, 1)] * 10 + [(100, 100)])
        # 10,000-comparison block exceeds the floored budget of 1,000.
        threshold = purging_threshold(blocks, cartesian=100 * 100)
        assert threshold == 1

    def test_smallest_level_always_kept(self):
        blocks = collection_of([(50, 50)])
        assert purging_threshold(blocks, cartesian=2500) == 2500

    def test_empty_collection(self):
        assert purging_threshold(BlockCollection(), cartesian=100) == 0

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            purging_threshold(BlockCollection(), cartesian=100, budget_ratio=0.0)

    def test_whole_levels_kept_or_dropped(self):
        # Two blocks at the same level: both survive or both go.
        blocks = collection_of([(1, 1), (3, 3), (3, 3)])
        threshold = purging_threshold(blocks, cartesian=100, budget_ratio=0.1)
        purged = purge_blocks(blocks, cartesian=100, budget_ratio=0.1)
        same_level = [b for b in blocks if b.comparisons == 9]
        survivors = [b for b in purged if b.comparisons == 9]
        assert len(survivors) in (0, len(same_level))
        assert threshold in (1, 9)


class TestPurgeBlocks:
    def test_manual_override(self):
        blocks = collection_of([(1, 1), (2, 3), (5, 5)])
        purged = purge_blocks(blocks, max_comparisons=6)
        assert [b.comparisons for b in purged] == [1, 6]

    def test_input_not_mutated(self):
        blocks = collection_of([(1, 1), (9, 9)])
        purge_blocks(blocks, cartesian=81)
        assert len(blocks) == 2

    def test_defaults_use_own_total_when_cartesian_missing(self):
        blocks = collection_of([(1, 1), (2, 2)])
        purged = purge_blocks(blocks)
        assert len(purged) >= 1


class TestPurgingProperties:
    @given(
        shapes=st.lists(
            st.tuples(st.integers(1, 20), st.integers(1, 20)), min_size=1, max_size=30
        ),
        budget=st.floats(min_value=0.001, max_value=1.0),
    )
    @settings(max_examples=60)
    def test_never_empties_and_respects_level_order(self, shapes, budget):
        blocks = collection_of(shapes)
        cartesian = 400
        purged = purge_blocks(blocks, cartesian=cartesian, budget_ratio=budget)
        assert len(purged) >= 1
        kept = {b.comparisons for b in purged}
        dropped = {b.comparisons for b in blocks} - kept
        if kept and dropped:
            assert max(kept) < min(dropped)

    @given(
        shapes=st.lists(
            st.tuples(st.integers(1, 10), st.integers(1, 10)), min_size=2, max_size=20
        )
    )
    @settings(max_examples=60)
    def test_budget_exceeded_only_by_first_level(self, shapes):
        blocks = collection_of(shapes)
        cartesian = 1000
        budget_ratio = 0.02
        purged = purge_blocks(blocks, cartesian=cartesian, budget_ratio=budget_ratio)
        total = purged.total_comparisons()
        smallest_level = min(b.comparisons for b in blocks)
        smallest_total = sum(
            b.comparisons for b in blocks if b.comparisons == smallest_level
        )
        budget = max(budget_ratio * cartesian, MIN_BUDGET)
        # Retained comparisons stay within budget, except that the
        # smallest level is always admitted.
        assert total <= budget or total == smallest_total
