"""Unit tests for token blocking."""

from repro.blocking.token_blocking import token_blocks
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase


def kb_of(values: list[str], prefix: str) -> KnowledgeBase:
    return KnowledgeBase(
        [EntityDescription(f"{prefix}{i}", [("v", v)]) for i, v in enumerate(values)],
        name=prefix,
    )


class TestTokenBlocking:
    def test_only_shared_tokens_make_blocks(self):
        kb1 = kb_of(["alpha beta"], "a")
        kb2 = kb_of(["beta gamma"], "b")
        blocks = token_blocks(kb1, kb2)
        assert [b.key for b in blocks] == ["beta"]

    def test_block_sides_are_entity_frequencies(self):
        kb1 = kb_of(["x y", "x"], "a")
        kb2 = kb_of(["x", "x z", "x"], "b")
        blocks = token_blocks(kb1, kb2)
        block = next(b for b in blocks if b.key == "x")
        assert len(block.side1) == kb1.entity_frequency("x") == 2
        assert len(block.side2) == kb2.entity_frequency("x") == 3

    def test_blocks_sorted_by_token(self):
        kb1 = kb_of(["zeta alpha m"], "a")
        kb2 = kb_of(["zeta alpha m"], "b")
        assert [b.key for b in token_blocks(kb1, kb2)] == ["alpha", "m", "zeta"]

    def test_matching_pair_cooccurs(self):
        kb1 = kb_of(["fat duck bray"], "a")
        kb2 = kb_of(["the fat duck"], "b")
        blocks = token_blocks(kb1, kb2)
        pairs = set()
        for block in blocks:
            pairs.update(block.pairs())
        assert (0, 0) in pairs

    def test_no_shared_tokens_no_blocks(self):
        blocks = token_blocks(kb_of(["aaa"], "a"), kb_of(["bbb"], "b"))
        assert len(blocks) == 0

    def test_deterministic(self):
        kb1 = kb_of(["p q r", "q r s"], "a")
        kb2 = kb_of(["r s t", "p"], "b")
        first = [(b.key, b.side1, b.side2) for b in token_blocks(kb1, kb2)]
        second = [(b.key, b.side1, b.side2) for b in token_blocks(kb1, kb2)]
        assert first == second
