"""Unit tests for Block / BlockCollection primitives."""

from repro.blocking.base import Block, BlockCollection


class TestBlock:
    def test_comparisons_is_cross_product(self):
        assert Block("k", [1, 2], [3, 4, 5]).comparisons == 6

    def test_cardinality_sums_sides(self):
        assert Block("k", [1, 2], [3]).cardinality == 3

    def test_singleton_pair_detection(self):
        assert Block("k", [1], [2]).is_singleton_pair
        assert not Block("k", [1, 2], [3]).is_singleton_pair
        assert not Block("k", [1], []).is_singleton_pair

    def test_pairs_enumerates_cross_product(self):
        assert set(Block("k", [1, 2], [9]).pairs()) == {(1, 9), (2, 9)}

    def test_equality_and_hash(self):
        assert Block("k", [1], [2]) == Block("k", (1,), (2,))
        assert hash(Block("k", [1], [2])) == hash(Block("k", (1,), (2,)))
        assert Block("k", [1], [2]) != Block("other", [1], [2])

    def test_repr_shows_shape(self):
        assert "1x2" in repr(Block("k", [1], [2, 3]))


class TestBlockCollection:
    def test_totals(self):
        collection = BlockCollection([Block("a", [1], [2, 3]), Block("b", [4, 5], [6])])
        assert len(collection) == 2
        assert collection.total_comparisons() == 4
        assert collection.total_assignments() == 6

    def test_distinct_pairs_deduplicates(self):
        collection = BlockCollection([Block("a", [1], [2]), Block("b", [1], [2])])
        assert collection.distinct_pairs() == {(1, 2)}

    def test_filter_returns_new_collection(self):
        collection = BlockCollection([Block("a", [1], [2]), Block("b", [1, 2], [3, 4])])
        small = collection.filter(lambda b: b.comparisons <= 1)
        assert len(small) == 1
        assert len(collection) == 2

    def test_iteration_order_is_insertion_order(self):
        blocks = [Block("b", [1], [2]), Block("a", [3], [4])]
        collection = BlockCollection(blocks)
        assert list(collection) == blocks

    def test_add_and_getitem(self):
        collection = BlockCollection()
        block = Block("x", [1], [2])
        collection.add(block)
        assert collection[0] is block

    def test_empty_collection_totals(self):
        collection = BlockCollection()
        assert collection.total_comparisons() == 0
        assert collection.distinct_pairs() == set()
