"""Unit tests for the Sorted Neighborhood blocking baseline."""

import pytest

from repro.blocking.sorted_neighborhood import default_key, sorted_neighborhood_blocks
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase


def kb_of(values: list[str], prefix: str) -> KnowledgeBase:
    return KnowledgeBase(
        [EntityDescription(f"{prefix}{i}", [("v", v)]) for i, v in enumerate(values)],
        name=prefix,
    )


class TestDefaultKey:
    def test_longest_value(self):
        kb = KnowledgeBase(
            [EntityDescription("a", [("v", "short"), ("w", "The Longest  Value")])]
        )
        assert default_key(kb, 0) == "the longest value"

    def test_empty_entity(self):
        kb = KnowledgeBase([EntityDescription("a", [("v", "   ")])])
        assert default_key(kb, 0) == ""


class TestSortedNeighborhood:
    def test_adjacent_keys_blocked_together(self):
        kb1 = kb_of(["aaa match"], "a")
        kb2 = kb_of(["aaa matched", "zzz far away"], "b")
        blocks = sorted_neighborhood_blocks(kb1, kb2, window=2)
        pairs = set()
        for block in blocks:
            pairs.update(block.pairs())
        assert (0, 0) in pairs

    def test_distant_keys_not_blocked_with_small_window(self):
        kb1 = kb_of(["aaa aab"], "a")
        kb2 = kb_of(["mmm nnn", "zzy zzz"], "b")
        blocks = sorted_neighborhood_blocks(kb1, kb2, window=2)
        pairs = set()
        for block in blocks:
            pairs.update(block.pairs())
        assert (0, 1) not in pairs

    def test_wider_window_covers_more(self):
        kb1 = kb_of(["aaa x", "ccc y"], "a")
        kb2 = kb_of(["bbb z", "ddd w"], "b")
        narrow = sorted_neighborhood_blocks(kb1, kb2, window=2).distinct_pairs()
        wide = sorted_neighborhood_blocks(kb1, kb2, window=4).distinct_pairs()
        assert narrow <= wide
        assert len(wide) > len(narrow)

    def test_single_kb_windows_dropped(self):
        kb1 = kb_of(["aaa", "aab"], "a")
        kb2 = kb_of(["zzz"], "b")
        blocks = sorted_neighborhood_blocks(kb1, kb2, window=2)
        for block in blocks:
            assert block.side1 and block.side2

    def test_invalid_window(self):
        kb = kb_of(["x"], "a")
        with pytest.raises(ValueError):
            sorted_neighborhood_blocks(kb, kb, window=1)

    def test_custom_key(self):
        kb1 = kb_of(["completely different"], "a")
        kb2 = kb_of(["nothing shared"], "b")
        blocks = sorted_neighborhood_blocks(
            kb1, kb2, window=2, key=lambda kb, eid: "constant"
        )
        assert blocks.distinct_pairs() == {(0, 0)}
