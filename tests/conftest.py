"""Shared fixtures: hand-built KBs and a small synthetic benchmark pair."""

from __future__ import annotations

import pytest

from repro.datasets.generator import ProfileSpec, generate_kb_pair
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase


@pytest.fixture
def restaurant_kbs() -> tuple[KnowledgeBase, KnowledgeBase]:
    """The running example of the paper's Figure 1 (Wikidata vs DBpedia).

    KB1 (Wikidata-flavoured): Restaurant1 -> John Lake A / Bray / UK.
    KB2 (DBpedia-flavoured): Restaurant2 -> Jonny Lake / Berkshire.
    """
    kb1 = KnowledgeBase(
        [
            EntityDescription(
                "wd:Restaurant1",
                [
                    ("label", "The Fat Duck"),
                    ("hasChef", "wd:JohnLakeA"),
                    ("territorial", "wd:Bray"),
                    ("inCountry", "wd:UK"),
                ],
            ),
            EntityDescription(
                "wd:JohnLakeA",
                [("label", "John Lake A"), ("name", "J. Lake")],
            ),
            EntityDescription(
                "wd:Bray",
                [("label", "Bray Berkshire village"), ("inCountry", "wd:UK")],
            ),
            EntityDescription("wd:UK", [("label", "United Kingdom")]),
        ],
        name="wikidata",
    )
    kb2 = KnowledgeBase(
        [
            EntityDescription(
                "db:Restaurant2",
                [
                    ("title", "Fat Duck restaurant"),
                    ("headChef", "db:JonnyLake"),
                    ("county", "db:Berkshire"),
                ],
            ),
            EntityDescription(
                "db:JonnyLake",
                [("title", "Jonny Lake"), ("alias", "J. Lake")],
            ),
            EntityDescription(
                "db:Berkshire",
                [("title", "Berkshire county Bray")],
            ),
        ],
        name="dbpedia",
    )
    return kb1, kb2


@pytest.fixture(scope="session")
def mini_pair():
    """A small but realistic synthetic clean-clean task (fast to solve)."""
    spec = ProfileSpec(
        name="mini",
        seed=99,
        n_matches=60,
        extras1=15,
        extras2=40,
        core_tokens=8,
        shared_fraction1=0.9,
        shared_fraction2=0.9,
        medium_vocab=400,
        name_overlap=0.8,
        relation_types=2,
        out_degree=2.0,
    )
    return generate_kb_pair(spec)


@pytest.fixture(scope="session")
def hard_pair():
    """A synthetic task with distractors and franchises (nearly similar)."""
    spec = ProfileSpec(
        name="mini-hard",
        seed=100,
        n_matches=120,
        extras1=40,
        extras2=160,
        core_tokens=6,
        shared_fraction1=0.65,
        shared_fraction2=0.65,
        medium_vocab=400,
        name_overlap=0.7,
        distractor_rate=0.6,
        distractor_steal_name=0.8,
        franchise_rate=0.4,
        franchise_size=3,
        relation_types=3,
        out_degree=2.5,
        junk_coverage=0.3,
    )
    return generate_kb_pair(spec)
