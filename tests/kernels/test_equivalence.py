"""Property tests: array kernel backends vs the dict reference.

The kernel layer's contract is *bit-identity*, not approximate
equality: identical float sums, identical candidate order, identical
retained-edge order.  Hypothesis drives random KB pairs (as random
block collections and in-neighbor maps) through every backend and the
reference implementation of :mod:`repro.graph.construction`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.base import Block, BlockCollection
from repro.graph import construction as reference
from repro.kernels import (
    CSRAdjacency,
    InternedBlocks,
    available_backends,
    get_backend,
    retained_edge_arrays,
)

BACKENDS = [name for name in available_backends() if name != "dict"]


class _FakeStats:
    """The two attributes ``neighbor_evidence`` reads from KBStatistics."""

    def __init__(self, in_neighbors):
        self.kb = range(len(in_neighbors))
        self._in_neighbors = in_neighbors

    def top_in_neighbors(self, eid):
        return self._in_neighbors[eid]

    def in_neighbor_csr(self):
        return CSRAdjacency.from_lists(self._in_neighbors)


@st.composite
def kb_pair_blocks(draw):
    """A random clean-clean blocking input: sizes and a block collection."""
    n1 = draw(st.integers(min_value=1, max_value=8))
    n2 = draw(st.integers(min_value=1, max_value=8))
    n_blocks = draw(st.integers(min_value=0, max_value=12))
    blocks = []
    for index in range(n_blocks):
        side1 = draw(
            st.lists(
                st.integers(min_value=0, max_value=n1 - 1),
                min_size=1, max_size=n1, unique=True,
            )
        )
        side2 = draw(
            st.lists(
                st.integers(min_value=0, max_value=n2 - 1),
                min_size=1, max_size=n2, unique=True,
            )
        )
        blocks.append(Block(f"b{index}", side1, side2))
    return n1, n2, BlockCollection(blocks)


@st.composite
def in_neighbor_map(draw, size):
    return [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=size - 1),
                max_size=size, unique=True,
            )
        )
        for _ in range(size)
    ]


@pytest.mark.parametrize("backend", BACKENDS)
class TestBetaEquivalence:
    @given(data=kb_pair_blocks())
    @settings(max_examples=60, deadline=None)
    def test_beta_rows_bit_identical(self, backend, data):
        n1, n2, blocks = data
        expected = reference.accumulate_beta(blocks, n1)
        interned = InternedBlocks.from_blocks(blocks, n1, n2)
        assert get_backend(backend).accumulate_beta(interned) == expected

    @given(data=kb_pair_blocks(), k=st.integers(min_value=1, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_value_topk_bit_identical(self, backend, data, k):
        n1, n2, blocks = data
        expected = reference.value_evidence(blocks, n1, n2, k)
        interned = InternedBlocks.from_blocks(blocks, n1, n2)
        side1, side2 = get_backend(backend).value_topk(interned, k)
        assert tuple(side1) == tuple(expected[0])
        assert tuple(side2) == tuple(expected[1])


class TestRetainedEdges:
    @given(data=kb_pair_blocks(), k=st.integers(min_value=1, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_edge_arrays_preserve_insertion_order(self, data, k):
        n1, n2, blocks = data
        value_1, value_2 = reference.value_evidence(blocks, n1, n2, k)
        expected = reference.retained_beta_edges(value_1, value_2)
        sources, targets, weights = retained_edge_arrays(value_1, value_2)
        assert list(zip(sources, targets)) == list(expected)
        assert list(weights) == list(expected.values())


@pytest.mark.parametrize("backend", BACKENDS)
class TestGammaEquivalence:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_gamma_topk_bit_identical(self, backend, data):
        n1, n2, blocks = data.draw(kb_pair_blocks())
        k = data.draw(st.integers(min_value=1, max_value=6))
        stats1 = _FakeStats(data.draw(in_neighbor_map(size=n1)))
        stats2 = _FakeStats(data.draw(in_neighbor_map(size=n2)))
        value_1, value_2 = reference.value_evidence(blocks, n1, n2, k)
        beta_edges = reference.retained_beta_edges(value_1, value_2)
        expected = reference.neighbor_evidence(beta_edges, stats1, stats2, k)
        edges = retained_edge_arrays(value_1, value_2)
        side1, side2 = get_backend(backend).gamma_topk(
            edges, stats1.in_neighbor_csr(), stats2.in_neighbor_csr(), k
        )
        assert tuple(side1) == tuple(expected[0])
        assert tuple(side2) == tuple(expected[1])

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_accumulate_gamma_matches_python_reference(self, backend, data):
        n1, n2, blocks = data.draw(kb_pair_blocks())
        stats1 = _FakeStats(data.draw(in_neighbor_map(size=n1)))
        stats2 = _FakeStats(data.draw(in_neighbor_map(size=n2)))
        value_1, value_2 = reference.value_evidence(blocks, n1, n2, 4)
        edges = retained_edge_arrays(value_1, value_2)
        adjacency1 = stats1.in_neighbor_csr()
        adjacency2 = stats2.in_neighbor_csr()
        rows = get_backend(backend).accumulate_gamma(edges, adjacency1, adjacency2)
        expected = get_backend("python").accumulate_gamma(edges, adjacency1, adjacency2)
        assert rows == expected


@pytest.mark.parametrize("backend", BACKENDS)
class TestFullGraphEquivalence:
    @pytest.mark.parametrize("profile", ["restaurant", "rexa_dblp"])
    def test_scaled_profile_graphs_identical(self, backend, profile):
        """End-to-end ``build_blocking_graph`` bit-identity on scaled-down
        dataset profiles (the four full profiles are covered by
        ``benchmarks/record_trajectory.py``)."""
        from repro.blocking.name_blocking import name_blocks
        from repro.blocking.purging import purge_blocks
        from repro.blocking.token_blocking import token_blocks
        from repro.datasets.profiles import scaled_profile
        from repro.kb.statistics import KBStatistics

        pair = scaled_profile(profile, 0.1, seed=3)
        stats1 = KBStatistics(pair.kb1)
        stats2 = KBStatistics(pair.kb2)
        names = name_blocks(stats1, stats2)
        tokens = purge_blocks(
            token_blocks(pair.kb1, pair.kb2),
            cartesian=len(pair.kb1) * len(pair.kb2),
        )
        dict_graph = reference.build_blocking_graph(stats1, stats2, names, tokens, k=15)
        kernel_graph = reference.build_blocking_graph(
            stats1, stats2, names, tokens, k=15, backend=backend
        )
        assert kernel_graph.identical(dict_graph)
