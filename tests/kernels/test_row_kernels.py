"""Single-row kernel entry points: python vs numpy bit-identity.

``accumulate_row``/``select_row`` are the serving hot path (and, for a
batch of one, the fast path inside ``value_topk``/``gamma_topk``).  The
numpy pair must reproduce the python pair's float sums and ranked
output exactly -- including ties, which rank by ascending candidate id
under the ``(-score, id)`` total order.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    KERNEL_API,
    available_backends,
    get_backend,
    missing_api,
    numpy_available,
)
from repro.kernels import python_backend

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not importable"
)

BACKENDS = [name for name in available_backends() if name != "dict"]


@st.composite
def weighted_postings(draw):
    """Random ``(block weight, ascending candidate ids)`` pairs."""
    n2 = draw(st.integers(min_value=1, max_value=24))
    n_blocks = draw(st.integers(min_value=0, max_value=10))
    blocks = []
    for _ in range(n_blocks):
        ids = sorted(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=n2 - 1),
                    min_size=0, max_size=n2, unique=True,
                )
            )
        )
        # Weights drawn from a tiny pool so duplicate sums (ties) are
        # common -- the tie-break is the hard part of selection.
        weight = draw(st.sampled_from([0.25, 0.5, 1.0, 1.5]))
        blocks.append((weight, ids))
    return blocks


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_api_complete(backend):
    module = get_backend(backend)
    assert missing_api(module) == ()
    assert set(KERNEL_API) <= set(dir(module))


class TestAccumulateRow:
    @needs_numpy
    @settings(max_examples=150, deadline=None)
    @given(blocks=weighted_postings())
    def test_numpy_matches_python(self, blocks):
        import repro.kernels.numpy_backend as numpy_backend

        py_ids, py_sums = python_backend.accumulate_row(blocks)
        np_ids, np_sums = numpy_backend.accumulate_row(blocks)
        # python returns first-touch order, numpy ascending-id order;
        # the (candidate -> sum) mapping must agree bit for bit.
        assert dict(zip(np_ids, np_sums)) == dict(zip(py_ids, py_sums))
        assert np_ids == sorted(np_ids)
        assert all(isinstance(c, int) for c in np_ids)

    @needs_numpy
    def test_consumes_array_and_list_postings(self):
        from array import array

        import numpy as np

        import repro.kernels.numpy_backend as numpy_backend

        blocks = [
            (0.5, array("i", [0, 2, 5])),
            (1.0, np.array([2, 3], dtype="<i4")),
            (0.25, [5]),
            (2.0, array("i")),
        ]
        ids, sums = numpy_backend.accumulate_row(blocks)
        assert dict(zip(ids, sums)) == {0: 0.5, 2: 1.5, 3: 1.0, 5: 0.75}

    def test_empty_input(self):
        assert python_backend.accumulate_row([]) == ([], [])


@needs_numpy
class TestSelectRow:
    @settings(max_examples=200, deadline=None)
    @given(blocks=weighted_postings(), k=st.integers(min_value=1, max_value=8))
    def test_numpy_matches_python(self, blocks, k):
        import repro.kernels.numpy_backend as numpy_backend

        ids, sums = python_backend.accumulate_row(blocks)
        expected = python_backend.select_row(ids, sums, k)
        assert numpy_backend.select_row(ids, sums, k) == expected
        # Row order must not matter: serving feeds the numpy-accumulated
        # (ascending) row into whichever backend the breaker picks.
        np_ids, np_sums = numpy_backend.accumulate_row(blocks)
        assert numpy_backend.select_row(np_ids, np_sums, k) == expected
        assert python_backend.select_row(np_ids, np_sums, k) == expected

    @settings(max_examples=100, deadline=None)
    @given(blocks=weighted_postings(), k=st.integers(min_value=1, max_value=8))
    def test_adaptive_cut_matches_python(self, blocks, k):
        import repro.kernels.numpy_backend as numpy_backend

        ids, sums = python_backend.accumulate_row(blocks)
        cut = (0.2, 1)
        assert numpy_backend.select_row(ids, sums, k, cut) == (
            python_backend.select_row(ids, sums, k, cut)
        )

    def test_tie_break_prefers_smaller_ids(self):
        import repro.kernels.numpy_backend as numpy_backend

        ids = [9, 3, 7, 1, 5]
        sums = [1.0, 1.0, 2.0, 1.0, 1.0]
        # k=3: 7 wins outright, then the 1.0 ties rank by ascending id.
        expected = ((7, 2.0), (1, 1.0), (3, 1.0))
        assert numpy_backend.select_row(ids, sums, 3) == expected
        assert python_backend.select_row(ids, sums, 3) == expected

    def test_degenerate_inputs(self):
        import repro.kernels.numpy_backend as numpy_backend

        assert numpy_backend.select_row([], [], 5) == ()
        assert numpy_backend.select_row([1], [0.5], 0) == ()
        assert numpy_backend.select_row([1], [0.5], 5) == ((1, 0.5),)


@needs_numpy
class TestTopkGroupedFastPath:
    def test_single_group_matches_general_path(self):
        """n == 1 delegates to select_row; results must match the
        grouped lexsort path run with a padded second group."""
        import numpy as np

        import repro.kernels.numpy_backend as numpy_backend

        candidates = np.array([4, 0, 2, 7], dtype=np.int64)
        scores = np.array([1.0, 2.0, 1.0, 0.5], dtype=np.float64)
        groups = np.zeros(4, dtype=np.int64)
        fast = numpy_backend._topk_grouped(groups, candidates, scores, 1, 2, None)
        # Same row plus a padding group, laid out in the precondition's
        # (ascending candidate within equal scores) order.
        general = numpy_backend._topk_grouped(
            np.array([0, 0, 0, 0, 1], dtype=np.int64),
            np.array([0, 2, 4, 7, 0], dtype=np.int64),
            np.array([2.0, 1.0, 1.0, 0.5, 1.0], dtype=np.float64),
            2, 2, None,
        )
        assert fast[0] == ((0, 2.0), (2, 1.0))
        assert general[0] == fast[0]


class TestRowEvidence:
    """The fused serving op equals its composed parts on both backends."""

    @settings(max_examples=150, deadline=None)
    @given(
        blocks=weighted_postings(),
        k=st.integers(min_value=1, max_value=8),
        margin=st.integers(min_value=0, max_value=5),
    )
    def test_fused_equals_composed(self, blocks, k, margin):
        from heapq import nsmallest

        ids, sums = python_backend.accumulate_row(blocks)
        probe = min(ids) if ids else 0
        for candidate in (None, probe, -1):
            row, mins, count, touched = python_backend.row_evidence(
                blocks, k, margin, candidate
            )
            assert row == python_backend.select_row(ids, sums, k)
            assert mins == sorted(nsmallest(margin, ids))
            assert count == len(ids)
            assert touched == (candidate is not None and candidate in ids)

    @needs_numpy
    @settings(max_examples=150, deadline=None)
    @given(
        blocks=weighted_postings(),
        k=st.integers(min_value=1, max_value=8),
        margin=st.integers(min_value=0, max_value=5),
    )
    def test_numpy_matches_python(self, blocks, k, margin):
        import repro.kernels.numpy_backend as numpy_backend

        ids, _ = python_backend.accumulate_row(blocks)
        probe = min(ids) if ids else 0
        for candidate in (None, probe, -1):
            expected = python_backend.row_evidence(blocks, k, margin, candidate)
            actual = numpy_backend.row_evidence(blocks, k, margin, candidate)
            assert tuple(actual[0]) == tuple(expected[0])
            assert list(actual[1]) == list(expected[1])
            assert actual[2:] == expected[2:]
            assert all(isinstance(c, int) for c in actual[1])

    @needs_numpy
    def test_empty_blocks(self):
        import repro.kernels.numpy_backend as numpy_backend

        for backend in (python_backend, numpy_backend):
            row, mins, count, touched = backend.row_evidence([], 5, 3, 1)
            assert (tuple(row), list(mins), count, touched) == ((), [], 0, False)
