"""Retry and deadline policies: backoff schedules, budgets, filters."""

import pytest

from repro.resilience import (
    DEFAULT_RETRYABLE,
    Deadline,
    DeadlineExpired,
    FaultInjected,
    RetryPolicy,
)


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        assert deadline.remaining() == 10.0
        clock.advance(4.0)
        assert deadline.remaining() == 6.0
        assert not deadline.expired()

    def test_expiry_is_exact_and_sticky(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(1.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        clock.advance(100.0)
        assert deadline.remaining() == 0.0

    def test_check_raises_with_label(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        deadline.check("early work")  # within budget: silent
        clock.advance(1.0)
        with pytest.raises(DeadlineExpired, match="before matching rules"):
            deadline.check("matching rules")

    def test_after_ms_converts_units(self):
        assert Deadline.after_ms(250.0).budget_s == 0.25

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Deadline(-1.0)

    def test_zero_budget_expires_immediately(self):
        deadline = Deadline(0.0, clock=FakeClock(5.0))
        assert deadline.expired()


class TestRetryPolicyBackoff:
    def test_exponential_schedule_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, max_delay_s=10.0, jitter_ratio=0.0
        )
        assert [policy.backoff_s(n) for n in (1, 2, 3, 4)] == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
            pytest.approx(0.8),
        ]

    def test_backoff_capped_at_max_delay(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=1.5, jitter_ratio=0.0)
        assert policy.backoff_s(10) == pytest.approx(1.5)

    def test_jitter_is_seeded_and_bounded(self):
        a = RetryPolicy(base_delay_s=0.1, jitter_ratio=0.5, seed=11)
        b = RetryPolicy(base_delay_s=0.1, jitter_ratio=0.5, seed=11)
        schedule_a = [a.backoff_s(n) for n in (1, 2, 3)]
        schedule_b = [b.backoff_s(n) for n in (1, 2, 3)]
        assert schedule_a == schedule_b
        for attempt, delay in zip((1, 2, 3), schedule_a):
            plain = 0.1 * 2 ** (attempt - 1)
            assert plain <= delay <= plain * 1.5

    def test_bad_attempt_rejected(self):
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().backoff_s(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -1.0},
            {"max_delay_s": -1.0},
            {"jitter_ratio": 1.5},
            {"jitter_ratio": -0.1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestRetryPolicyCall:
    def _flaky(self, failures: int, error: Exception):
        calls = {"n": 0}

        def thunk():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise error
            return calls["n"]

        return thunk, calls

    def test_recovers_from_transient_failures(self):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter_ratio=0.0)
        thunk, calls = self._flaky(2, FaultInjected("boom"))
        seen: list[tuple[int, BaseException]] = []
        assert policy.call(thunk, on_retry=lambda n, e: seen.append((n, e))) == 3
        assert calls["n"] == 3
        assert [attempt for attempt, _ in seen] == [1, 2]
        assert all(isinstance(error, FaultInjected) for _, error in seen)

    def test_exhausted_attempts_propagate_the_last_error(self):
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0)
        thunk, calls = self._flaky(5, TimeoutError("slow"))
        with pytest.raises(TimeoutError):
            policy.call(thunk)
        assert calls["n"] == 2

    def test_non_retryable_error_propagates_immediately(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        thunk, calls = self._flaky(5, ValueError("bad input"))
        with pytest.raises(ValueError):
            policy.call(thunk)
        assert calls["n"] == 1

    def test_default_retryable_set(self):
        policy = RetryPolicy()
        for error_type in DEFAULT_RETRYABLE:
            assert policy.is_retryable(error_type("x"))
        assert not policy.is_retryable(KeyError("x"))
        assert not policy.is_retryable(ZeroDivisionError())

    def test_custom_retryable_filter(self):
        policy = RetryPolicy(
            max_attempts=2, base_delay_s=0.0, retryable=(KeyError,)
        )
        thunk, calls = self._flaky(1, KeyError("k"))
        assert policy.call(thunk) == 2
        assert not policy.is_retryable(FaultInjected("not in the set"))


class TestDeadlineClampedBackoff:
    """A retry's backoff sleep must never outlive the caller's deadline."""

    def _always_failing(self):
        calls = {"n": 0}

        def thunk():
            calls["n"] += 1
            raise TimeoutError("slow")

        return thunk, calls

    def test_backoff_sleep_is_clamped_to_remaining_budget(self, monkeypatch):
        # Regression: a 10s backoff schedule under a 0.5s deadline used
        # to sleep the full 10s before discovering the budget was gone.
        from repro.resilience import policy as policy_module

        sleeps: list[float] = []
        monkeypatch.setattr(policy_module.time, "sleep", sleeps.append)
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        policy = RetryPolicy(max_attempts=3, base_delay_s=10.0, jitter_ratio=0.0)
        thunk, calls = self._always_failing()
        with pytest.raises(TimeoutError):
            policy.call(thunk, deadline=deadline)
        assert sleeps, "expected at least one clamped backoff sleep"
        assert max(sleeps) <= 0.5

    def test_expired_deadline_stops_retrying(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        thunk, calls = self._always_failing()
        with pytest.raises(TimeoutError):
            policy.call(thunk, deadline=deadline)
        assert calls["n"] == 1  # the error propagates, no blind retries


class TestRetryBudgetIntegration:
    def test_drained_budget_turns_retries_into_fail_fast(self):
        from repro.resilience import RetryBudget

        budget = RetryBudget(ratio=0.0, reserve=0.0)
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        calls = {"n": 0}

        def thunk():
            calls["n"] += 1
            raise TimeoutError("down hard")

        with pytest.raises(TimeoutError):
            policy.call(thunk, budget=budget)
        assert calls["n"] == 1
        assert budget.denied == 1

    def test_funded_budget_allows_recovery(self):
        from repro.resilience import RetryBudget

        budget = RetryBudget(ratio=0.2, reserve=2.0)
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        calls = {"n": 0}

        def thunk():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TimeoutError("flaky")
            return "ok"

        assert policy.call(thunk, budget=budget) == "ok"
        assert calls["n"] == 3
