"""Replica supervision driven deterministically through ``tick()``."""

import pytest

from repro.obs import Recorder
from repro.resilience import ReplicaSupervisor
from repro.resilience.supervisor import HEALTHY_RESET_S


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class StubReplica:
    def __init__(self, alive: bool = True):
        self.alive = alive
        self.killed = 0

    def kill(self):
        self.alive = False
        self.killed += 1


class StubRouter:
    """Duck-typed router: replica groups + a scriptable resurrect."""

    def __init__(self, shards: int = 1, replicas: int = 1):
        self._replicas = [
            [StubReplica() for _ in range(replicas)] for _ in range(shards)
        ]
        self.recorder = Recorder()
        self.resurrections: list[tuple[int, int]] = []
        self.fail_next = 0

    def resurrect(self, shard: int, position: int) -> bool:
        self.resurrections.append((shard, position))
        if self.fail_next > 0:
            self.fail_next -= 1
            raise RuntimeError("spawn failed")
        self._replicas[shard][position] = StubReplica()
        return True


def supervisor(router, clock, **kwargs):
    options = dict(jitter_ratio=0.0, base_backoff_s=1.0, max_backoff_s=8.0)
    options.update(kwargs)
    return ReplicaSupervisor(router, clock=clock, **options)


class TestSweep:
    def test_healthy_fleet_is_untouched(self):
        router = StubRouter(shards=2, replicas=2)
        sup = supervisor(router, FakeClock())
        assert sup.tick() == 0
        assert router.resurrections == []

    def test_dead_replica_is_restarted(self):
        router = StubRouter(shards=2, replicas=2)
        dead = router._replicas[1][0]
        dead.alive = False
        sup = supervisor(router, FakeClock())
        assert sup.tick() == 1
        assert router.resurrections == [(1, 0)]
        assert router._replicas[1][0] is not dead
        assert router._replicas[1][0].alive
        assert sup.restarts == 1
        assert router.recorder.counters()["supervisor.restarts"] == 1

    def test_failed_restart_backs_off_exponentially(self):
        clock = FakeClock()
        router = StubRouter()
        router._replicas[0][0].alive = False
        router.fail_next = 10
        sup = supervisor(router, clock)
        assert sup.tick() == 0  # attempt 1 at t=0
        assert sup.restart_failures == 1
        sup.tick()  # still inside backoff: no new attempt
        assert len(router.resurrections) == 1
        clock.advance(1.0)  # base_backoff_s
        sup.tick()  # attempt 2
        clock.advance(1.0)
        sup.tick()  # too early: attempt 2 backoff is 2s
        assert len(router.resurrections) == 2
        clock.advance(1.0)
        sup.tick()  # attempt 3 at t=3
        assert len(router.resurrections) == 3

    def test_storm_budget_parks_a_crash_loop(self):
        clock = FakeClock()
        router = StubRouter()
        router.fail_next = 10_000
        router._replicas[0][0].alive = False
        sup = supervisor(
            router,
            clock,
            max_restarts=3,
            window_s=100.0,
            base_backoff_s=0.0,
            max_backoff_s=0.0,
        )
        for _ in range(10):
            sup.tick()
            clock.advance(1.0)
        assert len(router.resurrections) == 3  # budget, not tick count
        assert sup.storm_suppressed == 1
        assert sup.stats()["slots"]["0/0"]["suppressed"] is True
        # The window slides: the first attempt (t=0) expires at t=100.
        clock.now = 101.0
        sup.tick()
        assert len(router.resurrections) == 4

    def test_sustained_health_resets_backoff(self):
        clock = FakeClock()
        router = StubRouter()
        router._replicas[0][0].alive = False
        sup = supervisor(router, clock, base_backoff_s=1.0)
        sup.tick()  # successful restart: attempt 1
        assert sup.stats()["slots"]["0/0"]["attempt"] == 1
        clock.advance(HEALTHY_RESET_S)
        sup.tick()  # healthy sweep resets the counter
        assert sup.stats()["slots"]["0/0"]["attempt"] == 0

    def test_successful_restart_still_backs_off_a_crash_loop(self):
        # Each restart "succeeds" but the worker dies again immediately;
        # next_due must space the attempts out.
        clock = FakeClock()
        router = StubRouter()
        sup = supervisor(router, clock, base_backoff_s=4.0)
        router._replicas[0][0].alive = False
        assert sup.tick() == 1
        router._replicas[0][0].alive = False  # dies again at once
        assert sup.tick() == 0  # parked until t=4
        clock.advance(4.0)
        assert sup.tick() == 1

    def test_backoff_is_seeded_and_bounded(self):
        clock = FakeClock()
        a = supervisor(
            StubRouter(), clock, jitter_ratio=0.2, seed=7, base_backoff_s=1.0
        )
        b = supervisor(
            StubRouter(), clock, jitter_ratio=0.2, seed=7, base_backoff_s=1.0
        )
        schedule = [a.backoff_s(n) for n in range(1, 6)]
        assert schedule == [b.backoff_s(n) for n in range(1, 6)]
        for attempt, delay in enumerate(schedule, start=1):
            bare = min(8.0, 1.0 * 2.0 ** (attempt - 1))
            assert bare <= delay <= bare * 1.2

    def test_probe_kills_and_heals_a_hung_replica(self):
        class HungReplica(StubReplica):
            def request(self, op, timeout=None):
                raise TimeoutError("no answer")

        router = StubRouter()
        router._replicas[0][0] = HungReplica()
        sup = supervisor(router, FakeClock(), probe_every=1)
        assert sup.tick() == 1
        assert sup.probe_failures == 1
        assert router.resurrections == [(0, 0)]

    def test_dead_replicas_gauge(self):
        router = StubRouter(shards=3)
        for group in router._replicas:
            group[0].alive = False
        router.fail_next = 10_000
        sup = supervisor(router, FakeClock())
        sup.tick()
        assert router.recorder.gauges()["supervisor.dead_replicas"] == 3.0

    @pytest.mark.parametrize("kwargs", [{"interval_s": 0.0}, {"max_restarts": 0}])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ReplicaSupervisor(StubRouter(), **kwargs)


class TestLifecycle:
    def test_thread_start_close_idempotent(self):
        router = StubRouter()
        sup = ReplicaSupervisor(router, interval_s=0.01)
        try:
            assert sup.start() is sup
            sup.start()
        finally:
            sup.close()
            sup.close()

    def test_background_thread_heals(self):
        import time

        router = StubRouter()
        router._replicas[0][0].alive = False
        with ReplicaSupervisor(
            router, interval_s=0.01, base_backoff_s=0.0, jitter_ratio=0.0
        ):
            deadline = time.monotonic() + 5.0
            while not router.resurrections and time.monotonic() < deadline:
                time.sleep(0.01)
        assert router.resurrections == [(0, 0)]
