"""Admission control: token buckets, retry budgets, the front door."""

import pytest

from repro.resilience import (
    AdmissionController,
    LoadShedError,
    RetryBudget,
    TokenBucket,
)
from repro.resilience.admission import DEFAULT_SOURCE, MAX_TRACKED_SOURCES


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=2.0, burst=3.0, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [True, True, True, False]
        clock.advance(0.5)  # 1 token drips back in
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=100.0, burst=2.0, clock=clock)
        clock.advance(1000.0)
        assert bucket.try_take(2.0)
        assert not bucket.try_take()

    def test_weighted_take(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=5.0, clock=FakeClock())
        assert bucket.try_take(5.0)
        assert not bucket.try_take(0.5)

    def test_exact_balance_is_takeable(self):
        # Float drift must not shed a request the budget arithmetic says
        # should pass: 0.1 * 3 != 0.3 exactly.
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=0.1, burst=1.0, clock=clock)
        assert bucket.try_take(1.0)
        for _ in range(10):
            clock.advance(1.0)
            bucket.try_take(0.0)
        assert bucket.try_take(1.0)

    @pytest.mark.parametrize("kwargs", [{"rate_per_s": 0.0}, {"burst": 0.0}])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TokenBucket(**{"rate_per_s": 1.0, "burst": 1.0, **kwargs})


class TestRetryBudget:
    def test_reserve_allows_cold_start_retries(self):
        budget = RetryBudget(ratio=0.2, reserve=3.0)
        assert [budget.allow_retry() for _ in range(4)] == [
            True, True, True, False,
        ]
        assert budget.denied == 1

    def test_deposits_are_a_fraction_of_traffic(self):
        budget = RetryBudget(ratio=0.1, reserve=0.0)
        for _ in range(9):
            budget.note_request()
        assert not budget.allow_retry()  # 0.9 < 1.0
        budget.note_request()
        assert budget.allow_retry()

    def test_amplification_is_bounded_under_total_failure(self):
        # 100 real requests with ratio 0.2 fund at most reserve + 20
        # retries -- not max_attempts * 100.
        budget = RetryBudget(ratio=0.2, reserve=5.0)
        retries = 0
        for _ in range(100):
            budget.note_request()
            while budget.allow_retry():
                retries += 1
        assert retries <= 5 + 0.2 * 100 + 1

    def test_balance_caps(self):
        budget = RetryBudget(ratio=1.0, reserve=0.0, cap=2.0)
        for _ in range(50):
            budget.note_request()
        assert budget.stats()["balance"] == 2.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="ratio"):
            RetryBudget(ratio=-0.1)
        with pytest.raises(ValueError, match="reserve"):
            RetryBudget(reserve=10.0, cap=5.0)


class TestAdmissionController:
    def test_unbounded_by_default(self):
        admission = AdmissionController(clock=FakeClock())
        with admission.admit(cost=10_000):
            pass
        assert admission.stats()["admitted"] == 10_000

    def test_queue_bound_sheds_with_reason(self):
        admission = AdmissionController(max_pending=2, clock=FakeClock())
        with admission.admit(cost=2):
            with pytest.raises(LoadShedError) as caught:
                with admission.admit():
                    pass
        assert caught.value.reason == "queue"
        assert admission.stats()["shed"] == {"queue": 1, "quota": 0}

    def test_pending_released_on_exit_and_on_error(self):
        admission = AdmissionController(max_pending=1, clock=FakeClock())
        with pytest.raises(RuntimeError, match="boom"):
            with admission.admit():
                raise RuntimeError("boom")
        with admission.admit():  # the failed request's cost was released
            pass
        assert admission.pending == 0

    def test_quota_sheds_per_source(self):
        clock = FakeClock()
        admission = AdmissionController(
            quota_qps=1.0, quota_burst=2.0, clock=clock
        )
        for _ in range(2):
            with admission.admit(source="a"):
                pass
        with pytest.raises(LoadShedError) as caught:
            with admission.admit(source="a"):
                pass
        assert caught.value.reason == "quota"
        assert caught.value.source == "a"
        with admission.admit(source="b"):  # separate bucket
            pass
        clock.advance(1.0)
        with admission.admit(source="a"):  # refilled
            pass

    def test_unlabelled_requests_share_the_default_bucket(self):
        admission = AdmissionController(
            quota_qps=1.0, quota_burst=1.0, clock=FakeClock()
        )
        with admission.admit():
            pass
        with pytest.raises(LoadShedError) as caught:
            with admission.admit(source=None):
                pass
        assert caught.value.source == DEFAULT_SOURCE

    def test_queue_shed_does_not_charge_quota(self):
        admission = AdmissionController(
            max_pending=1, quota_qps=1.0, quota_burst=2.0, clock=FakeClock()
        )
        with admission.admit(source="a"):
            with pytest.raises(LoadShedError):
                with admission.admit(source="a"):
                    pass
        # The queue rejection above must not have drained a's bucket:
        # exactly one of the two burst tokens remains.
        with admission.admit(source="a"):
            pass
        with pytest.raises(LoadShedError) as caught:
            with admission.admit(source="a"):
                pass
        assert caught.value.reason == "quota"

    def test_source_buckets_are_lru_capped(self):
        admission = AdmissionController(
            quota_qps=1_000_000.0, quota_burst=1_000_000.0, clock=FakeClock()
        )
        for i in range(MAX_TRACKED_SOURCES + 50):
            with admission.admit(source=f"s{i}"):
                pass
        assert admission.stats()["sources"] == MAX_TRACKED_SOURCES

    def test_burst_defaults_to_twice_qps(self):
        admission = AdmissionController(quota_qps=4.0, clock=FakeClock())
        assert admission.quota_burst == 8.0

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_pending": 0}, {"quota_qps": 0.0}, {"quota_qps": 1.0, "quota_burst": 0.0}],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionController(**kwargs)

    def test_counters_reach_the_recorder(self):
        from repro.obs import Recorder

        recorder = Recorder()
        admission = AdmissionController(
            max_pending=1, clock=FakeClock(), recorder=recorder
        )
        with admission.admit():
            with pytest.raises(LoadShedError):
                with admission.admit():
                    pass
        counters = recorder.counters()
        assert counters["admission.admitted"] == 1
        assert counters["admission.shed.queue"] == 1
