"""Circuit breaker state machine, driven by a fake clock."""

import threading

import pytest

from repro.obs import Recorder
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, STATE_VALUES, CircuitBreaker


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestTransitions:
    def test_trips_open_at_the_threshold(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, reset_after_s=10.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self, clock):
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # streak broken: 1 + 1, never 2

    def test_half_open_after_reset_window(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()

    def test_half_open_probe_success_closes(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.trips == 1

    def test_half_open_probe_failure_reopens_immediately(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, reset_after_s=1.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()  # one probe failure, not three
        assert breaker.state == OPEN
        assert breaker.trips == 2

    @pytest.mark.parametrize(
        "kwargs",
        [{"failure_threshold": 0}, {"reset_after_s": -1.0}],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


class TestRecorder:
    def test_trips_counted_and_state_gauged(self, clock):
        recorder = Recorder()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_s=1.0, clock=clock, recorder=recorder
        )
        assert recorder.gauges()["breaker.state"] == STATE_VALUES[CLOSED]
        breaker.record_failure()
        assert recorder.counter_value("breaker.trips") == 1
        assert recorder.gauges()["breaker.state"] == STATE_VALUES[OPEN]
        clock.advance(2.0)
        breaker.allow()
        assert recorder.gauges()["breaker.state"] == STATE_VALUES[HALF_OPEN]
        breaker.record_success()
        assert recorder.gauges()["breaker.state"] == STATE_VALUES[CLOSED]


class TestThreadSafety:
    def test_concurrent_failures_trip_exactly_once(self, clock):
        breaker = CircuitBreaker(failure_threshold=8, reset_after_s=1e9, clock=clock)

        def worker():
            for _ in range(100):
                breaker.record_failure()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Once open (no reset window in reach), further failures while
        # open don't re-trip: closed -> open happens exactly once.
        assert breaker.state == OPEN
        assert breaker.trips == 1
