"""Fault-injection registry: chaos grammar, schedules, ambient plans."""

import pickle
import time

import pytest

from repro.obs import Recorder, use_recorder
from repro.resilience import (
    FaultAction,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    SITES,
    current_faults,
    inject,
    parse_chaos,
    use_faults,
)


class TestChaosGrammar:
    def test_error_with_times(self):
        plan = parse_chaos("stage:*=error*2")
        (spec,) = plan.specs
        assert spec.site == "stage:*"
        assert spec.kind == "error"
        assert spec.times == 2
        assert spec.probability == 1.0

    def test_delay_with_seconds(self):
        (spec,) = parse_chaos("serve:match=delay:0.05").specs
        assert spec.kind == "delay"
        assert spec.delay_s == 0.05
        assert spec.times is None

    def test_probability_suffix(self):
        (spec,) = parse_chaos("kernel:numpy=error@0.5").specs
        assert spec.probability == 0.5

    def test_all_suffixes_compose(self):
        (spec,) = parse_chaos("io:*=delay:0.01*3@0.25").specs
        assert (spec.kind, spec.delay_s, spec.times, spec.probability) == (
            "delay", 0.01, 3, 0.25,
        )

    def test_multiple_entries_in_order(self):
        plan = parse_chaos("stage:graph:beta=error*1, serve:match=delay:0.001")
        assert [spec.site for spec in plan.specs] == [
            "stage:graph:beta", "serve:match",
        ]

    @pytest.mark.parametrize(
        "spec",
        [
            "",  # no entries
            "stage:graph",  # no '='
            "=error",  # no site
            "stage:*=",  # no action
            "stage:*=explode",  # unknown action
            "stage:*=delay",  # delay without seconds
            "stage:*=delay:abc",
            "stage:*=error*zero",  # bad repeat count
            "stage:*=error*0",  # times must be >= 1
            "stage:*=error@nope",  # bad probability
            "stage:*=error@0",  # probability must be in (0, 1]
            "stage:*=error@1.5",
            "stage:*=delay:-1",  # negative delay
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_chaos(spec)

    def test_catalogue_sites_are_parseable(self):
        for site in SITES:
            (spec,) = parse_chaos(f"{site}=error*1").specs
            assert spec.site == site


class TestFaultPlan:
    def test_times_bounds_the_spec_across_sites(self):
        plan = parse_chaos("stage:*=error*2")
        assert plan.draw("stage:graph:beta") is not None
        assert plan.draw("stage:graph:gamma") is not None
        # The budget of 2 is spent; a third matching site draws nothing.
        assert plan.draw("stage:match:R2") is None
        assert plan.fired() == {"stage:graph:beta": 1, "stage:graph:gamma": 1}
        assert plan.total_fired() == 2
        assert plan.exhausted()

    def test_non_matching_site_never_fires(self):
        plan = parse_chaos("serve:*=error")
        assert plan.draw("stage:graph:beta") is None
        assert plan.total_fired() == 0

    def test_first_matching_spec_wins(self):
        plan = parse_chaos("stage:graph:beta=delay:0.5,stage:*=error")
        action = plan.draw("stage:graph:beta")
        assert action.kind == "delay"
        assert plan.draw("stage:graph:gamma").kind == "error"

    def test_probability_draws_are_seeded(self):
        plan_a = parse_chaos("serve:match=error@0.3", seed=7)
        plan_b = parse_chaos("serve:match=error@0.3", seed=7)
        fired_a = [plan_a.draw("serve:match") is not None for _ in range(200)]
        fired_b = [plan_b.draw("serve:match") is not None for _ in range(200)]
        assert fired_a == fired_b
        assert 0 < sum(fired_a) < len(fired_a)  # probabilistic, not constant
        other = parse_chaos("serve:match=error@0.3", seed=8)
        fired_other = [other.draw("serve:match") is not None for _ in range(200)]
        assert fired_other != fired_a  # the seed matters

    def test_unbounded_spec_never_exhausts(self):
        plan = parse_chaos("stage:*=error")
        plan.draw("stage:graph:beta")
        assert not plan.exhausted()

    def test_fired_faults_counted_on_ambient_recorder(self):
        recorder = Recorder()
        plan = parse_chaos("stage:*=error*2")
        with use_recorder(recorder):
            plan.draw("stage:graph:beta")
            plan.draw("stage:graph:beta")
            plan.draw("stage:graph:beta")  # exhausted: no count
        assert recorder.counter_value("faults.injected.stage:graph:beta") == 2


class TestFaultAction:
    def test_error_action_raises(self):
        with pytest.raises(FaultInjected, match="injected fault at stage:x"):
            FaultAction(site="stage:x", kind="error").apply()

    def test_delay_action_sleeps(self):
        started = time.perf_counter()
        FaultAction(site="stage:x", kind="delay", delay_s=0.01).apply()
        assert time.perf_counter() - started >= 0.01

    def test_actions_are_picklable(self):
        action = FaultAction(site="stage:graph:beta", kind="delay", delay_s=0.5)
        assert pickle.loads(pickle.dumps(action)) == action


class TestAmbientPlan:
    def test_no_plan_means_inject_is_noop(self):
        assert current_faults() is None
        inject("stage:graph:beta")  # must not raise

    def test_use_faults_installs_and_restores(self):
        plan = parse_chaos("stage:*=error*1")
        with use_faults(plan) as installed:
            assert installed is plan
            assert current_faults() is plan
        assert current_faults() is None

    def test_nested_plans_restore_the_outer(self):
        outer = parse_chaos("stage:*=error")
        inner = parse_chaos("serve:*=error")
        with use_faults(outer):
            with use_faults(inner):
                assert current_faults() is inner
            assert current_faults() is outer

    def test_inject_fires_the_ambient_plan(self):
        plan = parse_chaos("stage:graph:beta=error*1")
        with use_faults(plan):
            with pytest.raises(FaultInjected):
                inject("stage:graph:beta")
            inject("stage:graph:beta")  # budget spent: silent
        assert plan.total_fired() == 1


class TestFaultSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "explode"},
            {"kind": "delay", "delay_s": -0.1},
            {"kind": "error", "times": 0},
            {"kind": "error", "probability": 0.0},
            {"kind": "error", "probability": 1.5},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(site="stage:*", **kwargs)

    def test_plan_repr_mentions_fires(self):
        plan = FaultPlan([FaultSpec(site="a", kind="error")], seed=3)
        plan.draw("a")
        assert "fired=1" in repr(plan)
