"""Provenance records and the deterministic systematic sampler."""

import json
import math
import threading

import pytest

from repro.obs import ProvenanceRecord, ProvenanceSampler
from repro.obs.provenance import RULE_EVIDENCE


class TestSampler:
    def test_rate_validation(self):
        with pytest.raises(ValueError, match="sample rate"):
            ProvenanceSampler(-0.1)
        with pytest.raises(ValueError, match="sample rate"):
            ProvenanceSampler(1.5)

    def test_rate_zero_samples_nothing(self):
        sampler = ProvenanceSampler(0.0)
        assert [sampler.next()[1] for _ in range(100)] == [False] * 100

    def test_rate_one_samples_everything(self):
        sampler = ProvenanceSampler(1.0)
        assert [sampler.next()[1] for _ in range(100)] == [True] * 100

    def test_sequence_numbers_count_from_one(self):
        sampler = ProvenanceSampler(0.5)
        assert [sampler.next()[0] for _ in range(3)] == [1, 2, 3]

    @pytest.mark.parametrize("rate", [0.01, 0.1, 0.25, 0.5])
    def test_systematic_rate_is_exact(self, rate):
        sampler = ProvenanceSampler(rate)
        n = 1000
        hits = sum(1 for _ in range(n) if sampler.next()[1])
        assert hits == math.floor(n * rate)

    def test_deterministic_across_instances(self):
        a = ProvenanceSampler(0.137)
        b = ProvenanceSampler(0.137)
        assert [a.next() for _ in range(500)] == [b.next() for _ in range(500)]

    def test_sampled_queries_spread_through_the_stream(self):
        sampler = ProvenanceSampler(0.1)
        picks = [seq for seq, sampled in (sampler.next() for _ in range(100)) if sampled]
        assert len(picks) == 10
        gaps = [b - a for a, b in zip(picks, picks[1:])]
        assert all(gap == 10 for gap in gaps)

    def test_thread_safety_allocates_unique_sequences(self):
        sampler = ProvenanceSampler(0.5)
        results = []
        lock = threading.Lock()

        def worker():
            local = [sampler.next() for _ in range(200)]
            with lock:
                results.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seqs = [seq for seq, _ in results]
        assert sorted(seqs) == list(range(1, 8 * 200 + 1))
        assert sum(1 for _, sampled in results if sampled) == 800


class TestProvenanceRecord:
    def _record(self, **overrides):
        fields = dict(
            trace_id="trace-000001-q7",
            query_uri="q7",
            rule="R2",
            evidence="value",
            candidates=12,
            top_scores=((3, 4.5), (9, 1.25)),
        )
        fields.update(overrides)
        return ProvenanceRecord(**fields)

    def test_to_json_roundtrips_through_json(self):
        payload = json.loads(json.dumps(self._record().to_json()))
        assert payload["trace_id"] == "trace-000001-q7"
        assert payload["rule"] == "R2"
        assert payload["evidence"] == "value"
        assert payload["candidates"] == 12
        assert payload["top_scores"] == [[3, 4.5], [9, 1.25]]
        assert payload["degraded"] is False
        assert payload["cached"] is False
        assert payload["batched"] is False

    def test_non_finite_top_score_serialises_as_null(self):
        record = self._record(rule="R1", top_scores=((3, float("inf")),))
        assert record.to_json()["top_scores"] == [[3, None]]

    def test_rule_evidence_covers_all_rules(self):
        assert RULE_EVIDENCE == {
            "R1": "name",
            "R2": "value",
            "R3": "value+neighbor",
            "R4": "reciprocity",
        }

    def test_from_explanation_bridges_offline_audits(self, restaurant_kbs):
        from repro.core.explain import explain_pair
        from repro.core.pipeline import MinoanER

        kb1, kb2 = restaurant_kbs
        result = MinoanER().resolve(kb1, kb2)
        (pair,) = [p for p in result.matches if p[0] == 0]
        explanation = explain_pair(result, pair[0], pair[1])
        record = ProvenanceRecord.from_explanation(explanation, trace_id="t-1")
        assert record.trace_id == "t-1"
        assert record.query_uri == explanation.uri1
        assert record.rule == explanation.rule
        assert record.evidence == RULE_EVIDENCE[explanation.rule]

    def test_from_explanation_rejects_other_types(self):
        with pytest.raises(TypeError, match="MatchExplanation"):
            ProvenanceRecord.from_explanation(object())
