"""Prometheus text exposition: rendering and the scrape endpoint."""

import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsServer, Recorder, render_metrics
from repro.obs.prometheus import CONTENT_TYPE, metric_name


class TestMetricName:
    def test_dots_collapse_to_underscores(self):
        assert metric_name("serving.latency_ms") == "serving_latency_ms"
        assert metric_name("kernels.dispatch.python") == "kernels_dispatch_python"

    def test_invalid_characters_sanitized(self):
        assert metric_name("a-b c/d") == "a_b_c_d"
        assert metric_name("phase.stage:graph.cpu") == "phase_stage:graph_cpu"

    def test_leading_digit_prefixed(self):
        assert metric_name("2fast") == "_2fast"


class TestRenderMetrics:
    def _recorder(self):
        recorder = Recorder()
        recorder.count("serving.queries", 7)
        recorder.gauge("workers", 4)
        for value in (1.0, 2.0, 3.0, 4.0):
            recorder.observe("serving.latency_ms", value)
        return recorder

    def test_counters_get_total_suffix(self):
        text = render_metrics(self._recorder())
        assert "# TYPE serving_queries_total counter" in text
        assert "serving_queries_total 7" in text

    def test_gauges_rendered(self):
        text = render_metrics(self._recorder())
        assert "# TYPE workers gauge" in text
        assert "workers 4" in text

    def test_histograms_rendered_as_summaries_with_quantiles(self):
        text = render_metrics(self._recorder())
        assert "# TYPE serving_latency_ms summary" in text
        assert 'serving_latency_ms{quantile="0.5"} 3' in text
        assert 'serving_latency_ms{quantile="0.95"} 4' in text
        assert 'serving_latency_ms{quantile="0.99"} 4' in text
        assert "serving_latency_ms_sum 10" in text
        assert "serving_latency_ms_count 4" in text

    def test_empty_recorder_renders_empty(self):
        assert render_metrics(Recorder()) == ""

    def test_every_line_is_comment_or_sample(self):
        for line in render_metrics(self._recorder()).strip().splitlines():
            assert line.startswith("# TYPE ") or " " in line

    def test_non_finite_values_use_prometheus_spelling(self):
        recorder = Recorder()
        recorder.gauge("g", float("inf"))
        assert "g +Inf" in render_metrics(recorder)


class TestMetricsServer:
    def test_scrape_roundtrip(self):
        recorder = Recorder()
        recorder.count("serving.queries", 3)
        recorder.observe("serving.latency_ms", 0.5)
        with MetricsServer(recorder) as server:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/metrics", timeout=5
            ) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode("utf-8")
        assert "serving_queries_total 3" in body
        assert 'serving_latency_ms{quantile="0.5"} 0.5' in body

    def test_scrape_sees_live_updates(self):
        recorder = Recorder()
        with MetricsServer(recorder) as server:
            url = f"http://127.0.0.1:{server.port}/metrics"
            recorder.count("serving.queries")
            first = urllib.request.urlopen(url, timeout=5).read().decode()
            recorder.count("serving.queries")
            second = urllib.request.urlopen(url, timeout=5).read().decode()
        assert "serving_queries_total 1" in first
        assert "serving_queries_total 2" in second

    def test_unknown_path_is_404(self):
        with MetricsServer(Recorder()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope", timeout=5
                )
            assert excinfo.value.code == 404

    def test_close_is_idempotent_and_releases_port(self):
        server = MetricsServer(Recorder())
        server.close()
        server.close()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/metrics", timeout=1
            )
