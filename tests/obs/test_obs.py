"""Unit tests for the observability layer: spans, metrics, exporters."""

import json
import threading
import time

import pytest

from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    current_recorder,
    resilience_summary,
    to_json,
    to_logfmt,
    use_recorder,
    write_trace,
)
from repro.obs.export import RESILIENCE_COUNTERS
from repro.obs.recorder import percentile


class TestSpanNesting:
    def test_parentage_and_depth(self):
        recorder = Recorder()
        with recorder.span("outer") as outer:
            with recorder.span("middle") as middle:
                with recorder.span("inner") as inner:
                    pass
        assert outer.parent_id is None and outer.depth == 0
        assert middle.parent_id == outer.span_id and middle.depth == 1
        assert inner.parent_id == middle.span_id and inner.depth == 2
        # Finish order: children before parents.
        assert [span.name for span in recorder.spans()] == ["inner", "middle", "outer"]

    def test_siblings_share_parent(self):
        recorder = Recorder()
        with recorder.span("root") as root:
            with recorder.span("a") as a:
                pass
            with recorder.span("b") as b:
                pass
        assert a.parent_id == b.parent_id == root.span_id

    def test_durations_are_monotonic_and_nested(self):
        recorder = Recorder()
        with recorder.span("outer") as outer:
            with recorder.span("inner") as inner:
                time.sleep(0.01)
        assert inner.seconds >= 0.01
        assert outer.seconds >= inner.seconds

    def test_exception_marks_error_and_propagates(self):
        recorder = Recorder()
        with pytest.raises(RuntimeError):
            with recorder.span("boom"):
                raise RuntimeError("x")
        (span,) = recorder.spans()
        assert span.status == "error"
        assert span.seconds >= 0.0
        # The stack was unwound: a new span is a root again.
        with recorder.span("after") as after:
            pass
        assert after.parent_id is None

    def test_attributes_recorded(self):
        recorder = Recorder()
        with recorder.span("resolve", n1=3, n2=5) as span:
            pass
        assert span.attributes == {"n1": 3, "n2": 5}

    def test_record_span_with_explicit_parent(self):
        recorder = Recorder()
        with recorder.span("stage") as stage:
            pass
        child = recorder.record_span("stage:partition-0", 0.25, parent=stage)
        assert child.parent_id == stage.span_id
        assert child.seconds == 0.25
        assert child.depth == stage.depth + 1


class TestThreadSafety:
    def test_concurrent_spans_nest_per_thread(self):
        recorder = Recorder()
        errors: list[str] = []

        def worker(label):
            for _ in range(50):
                with recorder.span(f"outer-{label}") as outer:
                    with recorder.span(f"inner-{label}") as inner:
                        if inner.parent_id != outer.span_id:
                            errors.append(f"{label}: bad parent")

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(recorder.spans()) == 8 * 50 * 2
        ids = [span.span_id for span in recorder.spans()]
        assert len(set(ids)) == len(ids)

    def test_concurrent_counters_and_histograms(self):
        recorder = Recorder()

        def worker():
            for i in range(200):
                recorder.count("c")
                recorder.observe("h", float(i))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert recorder.counter_value("c") == 8 * 200
        assert recorder.histogram("h").count == 8 * 200


class TestMetrics:
    def test_counter_accumulates(self):
        recorder = Recorder()
        recorder.count("x")
        recorder.count("x", 2.5)
        assert recorder.counter_value("x") == 3.5
        assert recorder.counters() == {"x": 3.5}

    def test_gauge_last_write_wins(self):
        recorder = Recorder()
        recorder.gauge("g", 1)
        recorder.gauge("g", 7)
        assert recorder.gauges() == {"g": 7.0}

    def test_histogram_snapshot(self):
        recorder = Recorder()
        for value in [1.0, 2.0, 3.0, 4.0]:
            recorder.observe("h", value)
        snap = recorder.histogram("h")
        assert snap.count == 4
        assert snap.total == 10.0
        assert snap.minimum == 1.0 and snap.maximum == 4.0
        assert snap.mean == 2.5
        assert snap.p50 == 3.0  # nearest rank: round(0.5 * 3) = 2
        assert snap.p95 == 4.0

    def test_histogram_window_bounded_but_totals_complete(self):
        recorder = Recorder(histogram_window=4)
        for value in range(100):
            recorder.observe("h", float(value))
        snap = recorder.histogram("h")
        assert snap.count == 100
        assert snap.maximum == 99.0
        assert snap.p50 >= 96.0  # window holds only the last 4

    def test_missing_histogram_is_zeros(self):
        snap = Recorder().histogram("nope")
        assert snap.count == 0 and snap.p95 == 0.0 and snap.mean == 0.0

    def test_percentile_nearest_rank(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([5.0], 0.95) == 5.0
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_reset(self):
        recorder = Recorder()
        with recorder.span("s"):
            recorder.count("c")
        recorder.reset()
        assert recorder.spans() == []
        assert recorder.counters() == {}


class TestAmbientRecorder:
    def test_default_is_null(self):
        assert current_recorder() is NULL_RECORDER

    def test_use_recorder_installs_and_restores(self):
        recorder = Recorder()
        with use_recorder(recorder) as installed:
            assert installed is recorder
            assert current_recorder() is recorder
            inner = Recorder()
            with use_recorder(inner):
                assert current_recorder() is inner
            assert current_recorder() is recorder
        assert current_recorder() is NULL_RECORDER

    def test_null_recorder_still_times_spans(self):
        with NULL_RECORDER.span("timed") as span:
            time.sleep(0.005)
        assert span.seconds >= 0.005
        assert NULL_RECORDER.spans() == []

    def test_null_recorder_drops_metrics(self):
        null = NullRecorder()
        null.count("c", 5)
        null.observe("h", 1.0)
        null.gauge("g", 2.0)
        assert null.counter_value("c") == 0.0
        assert null.histogram("h").count == 0
        assert null.gauges() == {}


class TestExporters:
    def _populated(self):
        recorder = Recorder()
        with recorder.span("resolve", n1=2):
            with recorder.span("blocking"):
                pass
        recorder.count("kernels.dispatch.python", 3)
        recorder.gauge("workers", 4)
        recorder.observe("serving.latency_ms", 1.5)
        return recorder

    def test_json_roundtrip(self):
        recorder = self._populated()
        payload = json.loads(to_json(recorder))
        assert {span["name"] for span in payload["spans"]} == {"resolve", "blocking"}
        blocking = next(s for s in payload["spans"] if s["name"] == "blocking")
        resolve = next(s for s in payload["spans"] if s["name"] == "resolve")
        assert blocking["parent"] == resolve["id"]
        assert payload["counters"]["kernels.dispatch.python"] == 3
        assert payload["gauges"]["workers"] == 4.0
        assert payload["histograms"]["serving.latency_ms"]["count"] == 1
        assert resolve["attributes"] == {"n1": 2}

    def test_logfmt_lines(self):
        text = to_logfmt(self._populated())
        lines = text.strip().splitlines()
        kinds = [line.split(" ", 1)[0] for line in lines]
        assert kinds.count("span") == 2
        assert kinds.count("counter") == 1
        assert kinds.count("gauge") == 1
        assert kinds.count("histogram") == 1
        assert any("name=resolve" in line and "attr.n1=2" in line for line in lines)

    def test_logfmt_quotes_values_with_spaces(self):
        recorder = Recorder()
        with recorder.span("s", label="two words"):
            pass
        assert 'attr.label="two words"' in to_logfmt(recorder)

    @pytest.mark.parametrize(
        "value",
        [
            'say "hello"',
            "key=value",
            "line one\nline two",
            "tab\there",
            "back\\slash",
            "cr\rhere",
            "",
        ],
    )
    def test_logfmt_escaping_round_trips(self, value):
        # Values containing quotes, =, newlines, tabs, or backslashes
        # must come back intact when the quoted segment is parsed as a
        # JSON string literal (the documented way to read logfmt traces).
        recorder = Recorder()
        with recorder.span("s", label=value):
            pass
        line = next(
            l for l in to_logfmt(recorder).splitlines() if "attr.label=" in l
        )
        rendered = line.split("attr.label=", 1)[1].split(" attr.", 1)[0]
        # Quoted values end at the closing quote of a valid JSON string;
        # the value must have been quoted (raw text would be ambiguous).
        assert rendered.startswith('"')
        decoder = json.JSONDecoder()
        decoded, _ = decoder.raw_decode(rendered)
        assert decoded == value

    def test_logfmt_unsafe_span_names_round_trip(self):
        recorder = Recorder()
        with recorder.span("stage=graph\npartition"):
            pass
        line = to_logfmt(recorder).splitlines()[1]
        assert line.startswith('span name="stage=graph\\npartition"')

    def test_write_trace_json_and_logfmt(self, tmp_path):
        recorder = self._populated()
        json_path = tmp_path / "trace.json"
        logfmt_path = tmp_path / "trace.logfmt"
        write_trace(recorder, json_path)
        write_trace(recorder, logfmt_path, format="logfmt")
        payload = json.loads(json_path.read_text())
        assert payload["counters"]
        assert payload["trace_id"] == recorder.trace_id
        logfmt = logfmt_path.read_text()
        assert logfmt.startswith("trace id=")
        assert logfmt.splitlines()[1].startswith("span ")

    def test_write_trace_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="trace format"):
            write_trace(Recorder(), tmp_path / "x", format="xml")

    def test_write_trace_dash_goes_to_stderr(self, capsys):
        recorder = self._populated()
        write_trace(recorder, "-")
        err = capsys.readouterr().err
        assert json.loads(err)["counters"]["kernels.dispatch.python"] == 3
        write_trace(recorder, "-", format="logfmt")
        assert capsys.readouterr().err.startswith("trace id=")

    def test_empty_recorder_exports_cleanly(self, tmp_path):
        recorder = Recorder()
        payload = json.loads(to_json(recorder))
        assert payload["spans"] == []
        assert payload["counters"] == {}
        assert payload["gauges"] == {}
        assert payload["histograms"] == {}
        # The resilience summary is always present, zeroed when quiet.
        assert payload["resilience"]["retry.attempts"] == 0.0
        assert payload["resilience"]["faults.injected"] == {}
        logfmt = to_logfmt(recorder)
        # Quiet trace: just the trace-id line and the zeroed summary.
        assert logfmt.startswith("trace id=")
        assert logfmt.splitlines()[1].startswith("resilience ")
        assert logfmt.count("\n") == 2


class TestResilienceSummary:
    def _resilient(self):
        recorder = Recorder()
        recorder.count("retry.attempts", 3)
        recorder.count("stage.skipped", 1)
        recorder.count("faults.injected.stage:graph:beta", 2)
        recorder.count("faults.injected.serve:match", 1)
        recorder.count("serving.queries", 10)  # not a resilience counter
        recorder.gauge("breaker.state", 2.0)
        return recorder

    def test_every_counter_present_with_zero_defaults(self):
        summary = resilience_summary(self._resilient())
        for name in RESILIENCE_COUNTERS:
            assert name in summary
        assert summary["retry.attempts"] == 3.0
        assert summary["stage.skipped"] == 1.0
        assert summary["deadline.expired"] == 0.0
        assert summary["breaker.trips"] == 0.0
        assert "serving.queries" not in summary

    def test_fault_sites_mapped_without_prefix(self):
        summary = resilience_summary(self._resilient())
        assert summary["faults.injected"] == {
            "serve:match": 1.0,
            "stage:graph:beta": 2.0,
        }

    def test_breaker_state_gauge_included_when_present(self):
        assert resilience_summary(self._resilient())["breaker.state"] == 2.0
        assert "breaker.state" not in resilience_summary(Recorder())

    def test_json_trace_carries_the_summary(self):
        payload = json.loads(to_json(self._resilient()))
        resilience = payload["resilience"]
        assert resilience["retry.attempts"] == 3.0
        assert resilience["faults.injected"]["stage:graph:beta"] == 2.0
        # The raw counters are still exported too, untouched.
        assert payload["counters"]["faults.injected.stage:graph:beta"] == 2.0

    def test_logfmt_trace_ends_with_the_summary_line(self):
        lines = to_logfmt(self._resilient()).strip().splitlines()
        assert lines[-1].startswith("resilience ")
        assert "retry.attempts=3" in lines[-1]
        # Site breakdown collapses to a total on the one-line form.
        assert "faults.injected=3" in lines[-1]
        assert "breaker.state=2" in lines[-1]
