"""Recorder snapshot/merge semantics: the cross-process trace contract."""

import pickle
import threading
import time

from repro.obs import NullRecorder, Recorder, use_recorder


def child_recorder(trace_id="trace-t"):
    child = Recorder(trace_id=trace_id)
    with child.span("worker", pid=1234):
        with child.span("kernel"):
            pass
    return child


class TestSpanMerging:
    def test_spans_renumbered_into_parent_id_space(self):
        parent = Recorder()
        with parent.span("stage") as stage:
            pass
        merged = parent.merge(child_recorder().snapshot(), parent_span=stage)
        ids = [span.span_id for span in parent.spans()]
        assert len(set(ids)) == len(ids)
        assert {span.name for span in merged} == {"worker", "kernel"}

    def test_internal_parentage_preserved_and_roots_grafted(self):
        parent = Recorder()
        with parent.span("stage") as stage:
            pass
        parent.merge(child_recorder().snapshot(), parent_span=stage)
        by_name = {span.name: span for span in parent.spans()}
        assert by_name["worker"].parent_id == stage.span_id
        assert by_name["kernel"].parent_id == by_name["worker"].span_id
        assert by_name["worker"].depth == stage.depth + 1
        assert by_name["kernel"].depth == stage.depth + 2

    def test_merge_without_parent_keeps_roots_top_level(self):
        parent = Recorder()
        parent.merge(child_recorder().snapshot())
        by_name = {span.name: span for span in parent.spans()}
        assert by_name["worker"].parent_id is None
        assert by_name["worker"].depth == 0
        assert by_name["kernel"].depth == 1

    def test_starts_rebased_onto_parent_span_start(self):
        parent = Recorder()
        with parent.span("stage") as stage:
            pass
        snapshot = child_recorder().snapshot()
        parent.merge(snapshot, parent_span=stage)
        child_worker = next(s for s in snapshot.spans if s.name == "worker")
        merged_worker = next(s for s in parent.spans() if s.name == "worker")
        assert merged_worker.start == stage.start + child_worker.start
        assert merged_worker.seconds == child_worker.seconds

    def test_explicit_offset_wins(self):
        parent = Recorder()
        snapshot = child_recorder().snapshot()
        parent.merge(snapshot, offset_s=100.0)
        merged_worker = next(s for s in parent.spans() if s.name == "worker")
        child_worker = next(s for s in snapshot.spans if s.name == "worker")
        assert merged_worker.start == 100.0 + child_worker.start

    def test_attributes_and_status_survive(self):
        parent = Recorder()
        child = Recorder(trace_id="t")
        try:
            with child.span("boom", label="x"):
                raise RuntimeError("fault")
        except RuntimeError:
            pass
        parent.merge(child.snapshot())
        (span,) = parent.spans()
        assert span.status == "error"
        assert span.attributes == {"label": "x"}

    def test_merged_spans_are_copies(self):
        parent = Recorder()
        child = child_recorder()
        snapshot = child.snapshot()
        parent.merge(snapshot)
        parent.spans()[0].attributes["mutated"] = True
        assert "mutated" not in snapshot.spans[0].attributes
        assert "mutated" not in child.spans()[0].attributes


class TestMetricMerging:
    def test_counters_sum(self):
        parent = Recorder()
        parent.count("kernels.dispatch.python", 2)
        child = Recorder(trace_id="t")
        child.count("kernels.dispatch.python", 3)
        child.count("only.child", 1)
        parent.merge(child.snapshot())
        assert parent.counters() == {
            "kernels.dispatch.python": 5.0,
            "only.child": 1.0,
        }

    def test_histogram_merge_keeps_exact_count_total_min_max(self):
        parent = Recorder()
        for value in (5.0, 7.0):
            parent.observe("h", value)
        child = Recorder(trace_id="t")
        for value in (1.0, 9.0, 3.0):
            child.observe("h", value)
        parent.merge(child.snapshot())
        snap = parent.histogram("h")
        assert snap.count == 5
        assert snap.total == 25.0
        assert snap.minimum == 1.0
        assert snap.maximum == 9.0

    def test_histogram_window_concatenates_but_stays_bounded(self):
        parent = Recorder(histogram_window=4)
        for value in range(4):
            parent.observe("h", float(value))
        child = Recorder(trace_id="t")
        for value in range(100, 103):
            child.observe("h", float(value))
        parent.merge(child.snapshot())
        snap = parent.histogram("h")
        assert snap.count == 7  # exact totals unaffected by the window
        # The window holds the 4 most recent: 3, 100, 101, 102.
        assert snap.p50 >= 3.0

    def test_histogram_merge_into_unseen_name(self):
        parent = Recorder()
        child = Recorder(trace_id="t")
        child.observe("h", 2.0)
        parent.merge(child.snapshot())
        snap = parent.histogram("h")
        assert (snap.count, snap.minimum, snap.maximum) == (1, 2.0, 2.0)

    def test_gauge_last_write_wins_by_child_timestamp(self):
        # Child wrote after the parent span started => child wins.
        parent = Recorder()
        parent.gauge("g", 1.0)
        with parent.span("stage") as stage:
            child = Recorder(trace_id="t")
            child.gauge("g", 2.0)
        parent.merge(child.snapshot(), parent_span=stage)
        assert parent.gauges()["g"] == 2.0

    def test_gauge_older_child_write_loses(self):
        # Child gauge rebased to ~epoch (offset 0) while the parent
        # wrote later => the parent's value stands.  The sleep keeps
        # the parent's write time strictly past the child's rebased
        # one on coarse clocks.
        child = Recorder(trace_id="t")
        child.gauge("g", 2.0)
        snapshot = child.snapshot()
        parent = Recorder()
        time.sleep(snapshot.duration_s + 0.01)
        parent.gauge("g", 1.0)
        parent.merge(snapshot, offset_s=0.0)
        assert parent.gauges()["g"] == 1.0


class TestSnapshotTransport:
    def test_snapshot_pickles(self):
        child = child_recorder()
        child.count("c", 2)
        child.gauge("g", 1.0)
        child.observe("h", 0.5)
        snapshot = pickle.loads(pickle.dumps(child.snapshot()))
        assert snapshot.trace_id == "trace-t"
        assert [span.name for span in snapshot.spans] == ["kernel", "worker"]
        assert snapshot.counters == {"c": 2.0}
        assert snapshot.histograms["h"][0] == 1

    def test_snapshot_carries_duration(self):
        child = Recorder(trace_id="t")
        assert child.snapshot().duration_s >= 0.0

    def test_trace_ids_deterministic_format(self):
        recorder = Recorder()
        assert recorder.trace_id.startswith("trace-")
        assert Recorder(trace_id="custom").trace_id == "custom"

    def test_null_recorder_merge_is_a_no_op(self):
        null = NullRecorder()
        assert null.trace_id == ""
        assert null.merge(child_recorder().snapshot()) == []
        assert null.spans() == []
        assert null.counters() == {}


class TestMergeThreadSafety:
    def test_concurrent_merges_and_spans(self):
        parent = Recorder()
        snapshots = []
        for i in range(8):
            child = Recorder(trace_id=f"t{i}")
            child.count("c")
            child.observe("h", float(i))
            snapshots.append(child.snapshot())

        def merger(snapshot):
            for _ in range(25):
                parent.merge(snapshot)

        def spanner():
            for _ in range(100):
                with parent.span("live"):
                    parent.count("c")

        threads = [
            threading.Thread(target=merger, args=(s,)) for s in snapshots
        ] + [threading.Thread(target=spanner) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert parent.counter_value("c") == 8 * 25 + 4 * 100
        assert parent.histogram("h").count == 8 * 25
        ids = [span.span_id for span in parent.spans()]
        assert len(ids) == 4 * 100  # live spans
        assert len(set(ids)) == len(ids)

    def test_concurrent_merges_with_spans_in_snapshots(self):
        parent = Recorder()
        snapshot = child_recorder().snapshot()
        threads = [
            threading.Thread(target=lambda: [parent.merge(snapshot) for _ in range(50)])
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ids = [span.span_id for span in parent.spans()]
        assert len(ids) == 8 * 50 * 2
        assert len(set(ids)) == len(ids)


class TestAmbientChildPattern:
    def test_use_recorder_routes_worker_metrics_into_child(self):
        driver = Recorder()
        child = Recorder(trace_id=driver.trace_id)
        with use_recorder(child):
            child.count("kernels.dispatch.python")
        driver.merge(child.snapshot())
        assert driver.counter_value("kernels.dispatch.python") == 1.0
