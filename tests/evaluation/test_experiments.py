"""Tests for the experiment drivers (one per paper table/figure)."""

import pytest

from repro.baselines.bsl import BSLBaseline
from repro.core.config import MinoanERConfig
from repro.evaluation import experiments


class TestDatasetStatistics:
    def test_table1_row(self, mini_pair):
        stats = experiments.dataset_statistics(mini_pair)
        assert stats.entities1 == len(mini_pair.kb1)
        assert stats.entities2 == len(mini_pair.kb2)
        assert stats.matches == len(mini_pair.ground_truth)
        assert stats.triples1 > stats.entities1
        assert stats.avg_tokens1 > 0
        assert stats.relations1 >= 1
        assert stats.vocabularies1 >= 1


class TestSimilarityDistribution:
    def test_figure2_points(self, mini_pair):
        dist = experiments.similarity_distribution(mini_pair, sample=25)
        assert len(dist.points) == 25
        for value, neighbor in dist.points:
            assert 0.0 <= value <= 1.0
            assert 0.0 <= neighbor <= 1.0
        assert dist.strongly_similar + dist.nearly_similar == 25

    def test_nearly_similar_fraction(self, mini_pair):
        dist = experiments.similarity_distribution(mini_pair, sample=10)
        assert 0.0 <= dist.nearly_similar_fraction <= 1.0


class TestBlockStatistics:
    def test_table2_row(self, mini_pair):
        stats = experiments.block_statistics(mini_pair)
        assert stats.cartesian == len(mini_pair.kb1) * len(mini_pair.kb2)
        assert stats.token_comparisons < stats.cartesian
        assert stats.report.recall > 0.9


class TestComparison:
    def test_runs_selected_systems(self, mini_pair):
        result = experiments.comparison(
            mini_pair,
            systems=("minoaner", "paris"),
        )
        assert set(result.reports) == {"MinoanER", "PARIS"}

    def test_bsl_uses_custom_grid(self, mini_pair):
        result = experiments.comparison(
            mini_pair,
            systems=("bsl",),
            bsl=BSLBaseline(ngram_sizes=(1,), weightings=("tf",), measures=("cosine",)),
        )
        assert "BSL" in result.reports
        assert "BSL" in result.details


class TestRuleAblation:
    def test_table4_variants(self, mini_pair):
        result = experiments.rule_ablation(mini_pair)
        assert set(result.reports) == set(experiments.RULE_VARIANTS)

    def test_single_rule_recall_below_full(self, mini_pair):
        result = experiments.rule_ablation(mini_pair)
        assert result.reports["R1"].recall <= result.reports["full"].recall + 1e-9

    def test_custom_variants(self, mini_pair):
        result = experiments.rule_ablation(
            mini_pair, variants={"only": {"use_reciprocity": False}}
        )
        assert list(result.reports) == ["only"]


class TestSensitivity:
    def test_figure5_curve(self, mini_pair):
        result = experiments.sensitivity(mini_pair, "theta", values=(0.4, 0.6))
        assert result.values == (0.4, 0.6)
        assert len(result.f1_scores) == 2
        assert all(0.0 <= f1 <= 1.0 for f1 in result.f1_scores)

    def test_default_grid_used(self, mini_pair):
        result = experiments.sensitivity(mini_pair, "relations_n", values=(2,))
        assert result.parameter == "relations_n"

    def test_unknown_parameter_rejected(self, mini_pair):
        with pytest.raises(KeyError):
            experiments.sensitivity(mini_pair, "bogus_parameter")


class TestScalability:
    def test_figure6_simulated(self, mini_pair):
        result = experiments.scalability(mini_pair, workers=(1, 2, 4))
        assert [p.workers for p in result.points] == [1, 2, 4]
        assert result.points[0].speedup == pytest.approx(1.0)
        # simulated times must not increase with more workers
        times = [p.total_seconds for p in result.points]
        assert times == sorted(times, reverse=True)
        assert 0.0 < result.matching_share() < 1.0

    def test_figure6_real_backend(self, mini_pair):
        result = experiments.scalability(mini_pair, workers=(1, 2), backend="serial")
        assert result.backend == "serial"
        assert len(result.points) == 2
        assert result.matches > 0
