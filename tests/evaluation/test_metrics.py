"""Unit tests for matching metrics and the partial-gold protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import MatchingReport, evaluate_matches


class TestMatchingReport:
    def test_precision_recall_f1(self):
        report = MatchingReport(true_positives=8, false_positives=2, false_negatives=2)
        assert report.precision == pytest.approx(0.8)
        assert report.recall == pytest.approx(0.8)
        assert report.f1 == pytest.approx(0.8)

    def test_zero_divisions(self):
        empty = MatchingReport(0, 0, 0)
        assert empty.precision == 0.0
        assert empty.recall == 0.0
        assert empty.f1 == 0.0

    def test_percentages(self):
        report = MatchingReport(1, 1, 0)
        assert report.as_percentages() == (50.0, 100.0, pytest.approx(200 / 3))

    def test_str(self):
        assert "P=" in str(MatchingReport(1, 0, 0))


class TestEvaluateMatches:
    def test_exact_match(self):
        gt = {(0, 0), (1, 1)}
        assert evaluate_matches(gt, gt).f1 == 1.0

    def test_partial_gold_ignores_unknown_pairs(self):
        report = evaluate_matches({(0, 0), (5, 9)}, {(0, 0)})
        assert report.false_positives == 0
        assert report.precision == 1.0

    def test_partial_gold_still_counts_wrong_pairs_on_gt_entities(self):
        report = evaluate_matches({(0, 5)}, {(0, 0)})
        assert report.false_positives == 1
        assert report.recall == 0.0

    def test_complete_gold_counts_everything(self):
        report = evaluate_matches({(0, 0), (5, 9)}, {(0, 0)}, partial_gold=False)
        assert report.false_positives == 1

    def test_works_with_uri_pairs(self):
        report = evaluate_matches({("a", "b")}, {("a", "b"), ("c", "d")})
        assert report.recall == 0.5

    def test_false_negatives_counted(self):
        report = evaluate_matches(set(), {(0, 0), (1, 1)})
        assert report.false_negatives == 2


pairs = st.sets(st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=20)


class TestProperties:
    @given(matches=pairs, gt=pairs)
    @settings(max_examples=80)
    def test_partial_gold_never_lowers_precision(self, matches, gt):
        partial = evaluate_matches(matches, gt, partial_gold=True)
        complete = evaluate_matches(matches, gt, partial_gold=False)
        assert partial.precision >= complete.precision - 1e-12
        assert partial.recall == complete.recall

    @given(matches=pairs, gt=pairs)
    @settings(max_examples=80)
    def test_counts_are_consistent(self, matches, gt):
        report = evaluate_matches(matches, gt, partial_gold=False)
        assert report.true_positives + report.false_negatives == len(gt)
        assert report.true_positives + report.false_positives == len(matches)
