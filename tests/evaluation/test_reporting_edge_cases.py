"""Edge cases of the reporting helpers."""

from repro.evaluation.experiments import SimilarityDistribution
from repro.evaluation.reporting import (
    _histogram,
    _scatter,
    format_similarity_distribution,
)


class TestHistogram:
    def test_empty(self):
        assert "(no data)" in _histogram([])

    def test_value_of_one_lands_in_last_bin(self):
        text = _histogram([1.0, 1.0])
        assert "[0.9,1.0)     2" in text

    def test_bar_lengths_proportional(self):
        text = _histogram([0.05] * 8 + [0.95] * 2)
        lines = text.splitlines()
        first_bar = lines[0].count("#")
        last_bar = lines[-1].count("#")
        assert first_bar == 40
        assert 0 < last_bar < first_bar


class TestScatter:
    def test_empty_points(self):
        text = _scatter([])
        assert "|" in text  # an empty frame still renders

    def test_corners_land_in_corners(self):
        text = _scatter([(0.0, 0.0), (1.0, 1.0)], size=5)
        lines = text.splitlines()
        assert lines[0].strip().startswith("1.0")
        # top row holds the (1,1) point in the last cell
        assert lines[0].rstrip().endswith("#|") or "#" in lines[0]
        assert "#" in lines[4] or "#" in lines[-2]

    def test_density_shading_increases(self):
        sparse = _scatter([(0.5, 0.5)], size=4)
        dense = _scatter([(0.5, 0.5)] * 50 + [(0.1, 0.1)], size=4)
        assert "#" in dense or "*" in dense
        assert sparse.count(" ") > dense.count("#")


class TestFormatWithEmptyDistribution:
    def test_zero_matches(self):
        column = SimilarityDistribution(
            name="empty", points=[], strongly_similar=0, nearly_similar=0, high_neighbor=0
        )
        text = format_similarity_distribution([column])
        assert "empty" in text
