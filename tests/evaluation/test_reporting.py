"""Tests for the paper-style table formatters."""

from repro.evaluation import experiments, reporting


class TestFormatters:
    def test_table1(self, mini_pair):
        table = reporting.format_dataset_statistics(
            [experiments.dataset_statistics(mini_pair)]
        )
        assert "Table 1" in table
        assert "mini" in table
        assert "Matches" in table

    def test_figure2(self, mini_pair):
        figure = reporting.format_similarity_distribution(
            [experiments.similarity_distribution(mini_pair, sample=10)]
        )
        assert "Figure 2" in figure
        assert "histogram" in figure
        assert "#" in figure  # at least one bar

    def test_table2(self, mini_pair):
        table = reporting.format_block_statistics(
            [experiments.block_statistics(mini_pair)]
        )
        assert "||BT||" in table
        assert "Recall" in table

    def test_table3(self, mini_pair):
        result = experiments.comparison(mini_pair, systems=("minoaner",))
        table = reporting.format_comparison([result])
        assert "MinoanER Prec." in table
        assert "MinoanER F1" in table

    def test_table4(self, mini_pair):
        result = experiments.rule_ablation(
            mini_pair, variants={"R1": {"use_value_rule": False, "use_rank_aggregation": False}}
        )
        table = reporting.format_rule_ablation([result])
        assert "[R1] F1" in table

    def test_figure5(self, mini_pair):
        result = experiments.sensitivity(mini_pair, "theta", values=(0.5, 0.6))
        figure = reporting.format_sensitivity([result])
        assert "theta" in figure
        assert "mini" in figure

    def test_figure6(self, mini_pair):
        result = experiments.scalability(mini_pair, workers=(1, 2))
        figure = reporting.format_scalability([result])
        assert "speedup" in figure
        assert "matching share" in figure

    def test_missing_system_rendered_as_dash(self, mini_pair):
        first = experiments.comparison(mini_pair, systems=("minoaner",))
        second = experiments.comparison(mini_pair, systems=("paris",))
        table = reporting.format_comparison([first, second])
        assert "-" in table
