"""Wire framing and snapshot serialisation round-trips."""

import io
import math

import pytest

from repro.obs import Recorder
from repro.sharding import (
    ProtocolError,
    read_frame,
    snapshot_from_json,
    snapshot_to_json,
    write_frame,
)
from repro.sharding.protocol import MAX_FRAME_BYTES


class TestFraming:
    def test_roundtrip(self):
        buffer = io.BytesIO()
        message = {"id": 3, "op": "match", "entity": {"uri": "a", "pairs": []}}
        write_frame(buffer, message)
        buffer.seek(0)
        assert read_frame(buffer) == message

    def test_multiple_frames_in_sequence(self):
        buffer = io.BytesIO()
        for i in range(5):
            write_frame(buffer, {"id": i})
        buffer.seek(0)
        assert [read_frame(buffer)["id"] for _ in range(5)] == list(range(5))
        assert read_frame(buffer) is None

    def test_clean_eof_returns_none(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_floats_survive_bit_exactly(self):
        values = [0.1 + 0.2, 1 / 3, 1e-300, math.pi, 2.0**53 - 1]
        buffer = io.BytesIO()
        write_frame(buffer, {"scores": values})
        buffer.seek(0)
        decoded = read_frame(buffer)["scores"]
        assert all(a == b for a, b in zip(decoded, values))

    def test_unicode_payload(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"uri": "café 寿司"})
        buffer.seek(0)
        assert read_frame(buffer)["uri"] == "café 寿司"

    def test_bad_length_prefix(self):
        with pytest.raises(ProtocolError, match="length prefix"):
            read_frame(io.BytesIO(b"xyz\n{}\n"))

    def test_oversized_length(self):
        huge = str(MAX_FRAME_BYTES + 1).encode()
        with pytest.raises(ProtocolError, match="out of bounds"):
            read_frame(io.BytesIO(huge + b"\n"))

    def test_truncated_payload(self):
        with pytest.raises(ProtocolError, match="truncated"):
            read_frame(io.BytesIO(b"100\n{}"))

    def test_non_json_payload(self):
        with pytest.raises(ProtocolError, match="not JSON"):
            read_frame(io.BytesIO(b"3\nabc\n"))

    def test_non_object_payload(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            read_frame(io.BytesIO(b"2\n[]\n"))


class TestSnapshotCodec:
    def test_roundtrip_preserves_spans_and_metrics(self):
        recorder = Recorder()
        with recorder.span("outer", label="x"):
            with recorder.span("inner"):
                pass
        recorder.count("worker.requests", 3)
        recorder.gauge("worker.up", 1)
        recorder.observe("worker.latency_ms", 1.25)
        recorder.observe("worker.latency_ms", 0.5)
        snapshot = recorder.snapshot()

        rebuilt = snapshot_from_json(snapshot_to_json(snapshot))
        assert rebuilt.trace_id == snapshot.trace_id
        assert rebuilt.counters == snapshot.counters
        assert rebuilt.gauges == snapshot.gauges
        assert rebuilt.histograms == snapshot.histograms
        assert [s.name for s in rebuilt.spans] == [s.name for s in snapshot.spans]
        assert [s.parent_id for s in rebuilt.spans] == [
            s.parent_id for s in snapshot.spans
        ]

    def test_rebuilt_snapshot_merges_into_a_recorder(self):
        child = Recorder()
        with child.span("shard.work"):
            pass
        child.count("shard.ops", 2)
        rebuilt = snapshot_from_json(snapshot_to_json(child.snapshot()))

        parent = Recorder()
        with parent.span("shard.worker") as span:
            pass
        parent.merge(rebuilt, span)
        assert "shard.work" in parent.span_names()
        assert parent.counter_value("shard.ops") == 2
