"""Subprocess workers: spawn, equality, hedging, mid-stream death.

Slower than the inline suite (real worker processes over pipes), so it
sticks to the mini profile and small query sets.
"""

import pytest

from repro.core.config import MinoanERConfig
from repro.serving import MatchEngine, ResolutionIndex
from repro.sharding import ShardFailure, ShardPlanner, ShardRouter


def build_sharded(pair, tmp_path, config, shards):
    index = ResolutionIndex.build(pair.kb2, config)
    path = tmp_path / "kb2.idx"
    index.save(path)
    ShardPlanner(shards).write(index, path)
    return index, path


class TestSpawn:
    def test_two_shard_workers_match_unsharded(self, mini_pair, tmp_path):
        config = MinoanERConfig()
        index, path = build_sharded(mini_pair, tmp_path, config, 2)
        engine = MatchEngine(index, config)
        batch = list(mini_pair.kb1)
        router = ShardRouter.spawn(path, 2, mmap=False, config=config)
        try:
            assert router.match_batch(batch) == engine.match_batch(batch)
            sample = batch[:10]
            assert [router.match(e) for e in sample] == [
                engine.match(e) for e in sample
            ]
        finally:
            router.close()

    def test_spawn_requires_shard_files(self, mini_pair, tmp_path):
        config = MinoanERConfig()
        index = ResolutionIndex.build(mini_pair.kb2, config)
        path = tmp_path / "kb2.idx"
        index.save(path)
        with pytest.raises(FileNotFoundError, match="missing shard files"):
            ShardRouter.spawn(path, 3, mmap=False, config=config)

    def test_hello_reports_shard_identity(self, mini_pair, tmp_path):
        config = MinoanERConfig()
        index, path = build_sharded(mini_pair, tmp_path, config, 2)
        router = ShardRouter.spawn(path, 2, mmap=False, config=config)
        try:
            hello = router._replicas[1][0].request("hello")
            assert hello["shard"] == 1
            assert hello["count"] == 2
            assert hello["n2"] == index.n2
        finally:
            router.close()


class TestHedging:
    def test_zero_delay_hedges_stay_identical(self, mini_pair, tmp_path):
        config = MinoanERConfig(serving_hedge_ms=0.0)
        index, path = build_sharded(mini_pair, tmp_path, config, 2)
        engine = MatchEngine(index, config)
        batch = list(mini_pair.kb1)[:15]
        router = ShardRouter.spawn(path, 2, replicas=2, mmap=False, config=config)
        try:
            assert [router.match(e) for e in batch] == [
                engine.match(e) for e in batch
            ]
            section = router.stats()["sharding"]
            assert section["hedge_fired"] > 0
            assert (
                section["hedge_won"] + section["hedge_lost"]
                <= section["hedge_fired"]
            )
        finally:
            router.close()

    def test_single_replica_never_hedges(self, mini_pair, tmp_path):
        config = MinoanERConfig(serving_hedge_ms=0.0)
        _, path = build_sharded(mini_pair, tmp_path, config, 2)
        router = ShardRouter.spawn(path, 2, replicas=1, mmap=False, config=config)
        try:
            for entity in list(mini_pair.kb1)[:5]:
                router.match(entity)
            assert router.stats()["sharding"]["hedge_fired"] == 0
        finally:
            router.close()


class TestWorkerDeath:
    def test_killed_worker_degrades_midstream(self, mini_pair, tmp_path):
        config = MinoanERConfig(failure_mode="degrade")
        index, path = build_sharded(mini_pair, tmp_path, config, 2)
        batch = list(mini_pair.kb1)
        errors = []
        router = ShardRouter.spawn(
            path, 2, mmap=False, config=config,
            on_shard_error=lambda shard, error: errors.append(shard),
        )
        try:
            healthy = router.match_batch(batch[:5])
            assert not any(d.degraded for d in healthy)

            router._replicas[0][0].kill()
            degraded = router.match_batch(batch[5:10])
            assert all(d.degraded for d in degraded)
            # Degraded-but-valid: the stream still carries decisions.
            assert len(degraded) == 5
            assert errors == [0]
            assert router.stats()["sharding"]["down"] == [0]
        finally:
            router.close()

    def test_replica_failover_within_shard(self, mini_pair, tmp_path):
        # With 2 replicas, killing one is invisible: the sibling answers
        # and nothing degrades.
        config = MinoanERConfig(failure_mode="degrade")
        index, path = build_sharded(mini_pair, tmp_path, config, 2)
        engine = MatchEngine(index, config)
        batch = list(mini_pair.kb1)[:10]
        router = ShardRouter.spawn(path, 2, replicas=2, mmap=False, config=config)
        try:
            router._replicas[0][0].kill()
            decisions = router.match_batch(batch)
            assert not any(d.degraded for d in decisions)
            assert decisions == engine.match_batch(batch)
        finally:
            router.close()

    def test_fail_fast_raises_on_dead_shard(self, mini_pair, tmp_path):
        config = MinoanERConfig()
        _, path = build_sharded(mini_pair, tmp_path, config, 2)
        router = ShardRouter.spawn(path, 2, mmap=False, config=config)
        try:
            router._replicas[1][0].kill()
            with pytest.raises(ShardFailure):
                router.match_batch(list(mini_pair.kb1)[:3])
        finally:
            router.close()


class TestTraceMerge:
    def test_close_grafts_worker_snapshots(self, mini_pair, tmp_path):
        config = MinoanERConfig()
        _, path = build_sharded(mini_pair, tmp_path, config, 2)
        router = ShardRouter.spawn(path, 2, mmap=False, config=config)
        router.match(list(mini_pair.kb1)[0])
        router.close()
        assert "shard.worker" in router.recorder.span_names()
        spans = [s for s in router.recorder.spans() if s.name == "shard.worker"]
        assert {span.attributes["shard"] for span in spans} == {0, 1}
