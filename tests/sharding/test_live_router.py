"""LiveShardRouter: the live overlay on the scatter/gather tier.

Same contract as ``tests/serving/test_live.py``, one level up: a
sharded fleet with a router-side delta must answer exactly like a
single cold engine over a full rebuild -- including after a compaction
that re-shards the base and broadcasts ``reload`` to every replica.
"""

import pytest

from repro.core.config import MinoanERConfig
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.serving import MatchEngine, ResolutionIndex
from repro.sharding import (
    InlineReplica,
    LiveShardRouter,
    ShardPlanner,
    ShardWorker,
    shard_paths,
)

CONFIG = MinoanERConfig()


def entity(i: int, word: str | None = None, info: str | None = None):
    word = word or f"alpha{i}"
    return EntityDescription(
        f"http://kb2/e{i}",
        [("name", f"{word} tag{i}"), ("info", info or f"extra{i} blob")],
    )


def build_index(entities):
    return ResolutionIndex.build(KnowledgeBase(list(entities), name="kb2"), CONFIG)


def query(label: str, uri: str = "q"):
    return EntityDescription(uri, [("label", label)])


def live_router(index, shards, **kwargs):
    replica_sets = [
        [InlineReplica(ShardWorker(MatchEngine(shard, CONFIG)))]
        for shard in ShardPlanner(shards).plan(index)
    ]
    return LiveShardRouter(index, replica_sets, CONFIG, **kwargs)


def decision_fields(decision):
    # No ``kb2_id``: overlay ids (base ids + delta slots above n2)
    # legitimately differ from a cold rebuild's renumbering.
    return (
        decision.query_uri,
        decision.kb2_uri,
        decision.rule,
        decision.score,
        decision.candidates,
        decision.degraded,
    )


BASE = [entity(i) for i in range(10)]

PROBES = (
    [query(f"alpha{i} tag{i}", uri=f"q{i}") for i in range(10)]
    + [
        query("zeta99 tag99", uri="qnew"),
        query("beta3 tag3x", uri="qover"),
        query("unmatched nonsense", uri="qmiss"),
    ]
)


def apply_edits(target):
    """delete e5, overwrite e3, add e99 -- via upsert/delete calls."""
    target.delete("http://kb2/e5")
    target.upsert(entity(99, "zeta99"))
    target.upsert(
        EntityDescription(
            "http://kb2/e3", [("name", "beta3 tag3x"), ("info", "changed")]
        )
    )


def final_entities():
    survivors = [entity(i) for i in range(10) if i not in (3, 5)]
    return survivors + [
        entity(99, "zeta99"),
        EntityDescription(
            "http://kb2/e3", [("name", "beta3 tag3x"), ("info", "changed")]
        ),
    ]


class TestLiveShardedEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_single_decisions_equal_cold_rebuild(self, shards):
        router = live_router(build_index(BASE), shards)
        cold = MatchEngine(build_index(final_entities()), CONFIG)
        try:
            apply_edits(router)
            for probe in PROBES:
                assert decision_fields(router.match(probe)) == decision_fields(
                    cold.match(probe)
                ), probe.uri
        finally:
            router.close()

    @pytest.mark.parametrize("shards", [1, 3])
    def test_batch_falls_back_locally_and_matches(self, shards):
        router = live_router(build_index(BASE), shards)
        cold = MatchEngine(build_index(final_entities()), CONFIG)
        try:
            apply_edits(router)
            ours = [decision_fields(d) for d in router.match_batch(PROBES)]
            theirs = [decision_fields(d) for d in cold.match_batch(PROBES)]
            assert ours == theirs
            assert router.recorder.counter_value("shard.batch_local") == 1
        finally:
            router.close()

    def test_frozen_batch_still_scatters(self):
        router = live_router(build_index(BASE), 2)
        try:
            router.match_batch(PROBES[:3])
            assert router.recorder.counter_value("shard.batch_local") == 0
        finally:
            router.close()

    def test_upsert_visible_immediately(self):
        router = live_router(build_index(BASE), 2)
        try:
            miss = router.match(query("zeta99 tag99"))
            assert miss.kb2_uri != "http://kb2/e99"
            router.upsert(entity(99, "zeta99"))
            hit = router.match(query("zeta99 tag99"))
            assert hit.kb2_uri == "http://kb2/e99"
            router.delete("http://kb2/e99")
            gone = router.match(query("zeta99 tag99"))
            assert gone.kb2_uri != "http://kb2/e99"
        finally:
            router.close()

    def test_stats_carry_live_and_sharding_sections(self):
        router = live_router(build_index(BASE), 2)
        try:
            router.upsert(entity(99, "zeta99"))
            stats = router.stats()
            assert stats["live"]["delta_entities"] == 1
            assert stats["live"]["generation"] == router.generation == 1
            assert stats["sharding"]["shards"] == 2
        finally:
            router.close()


class TestCompactionSwap:
    def test_compact_reshards_reloads_and_restores_scatter(self, tmp_path):
        index_path = tmp_path / "kb2.idx"
        base = build_index(BASE)
        base.save(index_path)
        for target, shard in zip(
            shard_paths(index_path, 2), ShardPlanner(2).plan(base)
        ):
            shard.save(target)
        router = live_router(base, 2)
        router.index_path = index_path
        cold = MatchEngine(build_index(final_entities()), CONFIG)
        try:
            apply_edits(router)
            before = [decision_fields(router.match(p)) for p in PROBES]
            fresh = router.compact()
            assert not router.index.delta_active
            assert router.swap_count == 1
            assert fresh.n2 == len(final_entities())
            # The shard files on disk were rewritten to the new base.
            for target in shard_paths(index_path, 2):
                info = ResolutionIndex.load(target).shard_info
                assert info["count"] == 2
            after = [decision_fields(router.match(p)) for p in PROBES]
            expected = [decision_fields(cold.match(p)) for p in PROBES]
            assert before == after == expected
            # Batches scatter again now that the delta is gone.
            router.match_batch(PROBES[:3])
            assert router.recorder.counter_value("shard.batch_local") == 0
        finally:
            router.close()

    def test_compact_without_index_path_raises(self):
        router = live_router(build_index(BASE), 2)
        try:
            router.upsert(entity(99, "zeta99"))
            with pytest.raises(ValueError, match="shard files on disk"):
                router.compact()
        finally:
            router.close()

    def test_failed_reload_kills_the_replica(self, tmp_path):
        class FailingReplica(InlineReplica):
            def __init__(self, worker):
                super().__init__(worker)
                self.killed = False

            def request(self, op, payload=None, timeout=30.0):
                if op == "reload":
                    raise RuntimeError("injected reload failure")
                return super().request(op, payload, timeout)

            def kill(self):
                self.killed = True

        index_path = tmp_path / "kb2.idx"
        base = build_index(BASE)
        base.save(index_path)
        shards = ShardPlanner(2).plan(base)
        bad = FailingReplica(ShardWorker(MatchEngine(shards[0], CONFIG)))
        good = InlineReplica(ShardWorker(MatchEngine(shards[1], CONFIG)))
        failures: list[int] = []
        router = LiveShardRouter(
            base,
            [[bad], [good]],
            CONFIG,
            on_shard_error=lambda shard, error: failures.append(shard),
        )
        router.index_path = index_path
        try:
            router.upsert(entity(99, "zeta99"))
            router.compact()
            assert bad.killed
            assert failures == [0]
            assert router.recorder.counter_value("shard.reload_failures") == 1
        finally:
            router.close()


class TestWorkerReloadOp:
    def test_reload_swaps_the_worker_engine(self, tmp_path):
        shards = ShardPlanner(2).plan(build_index(BASE))
        replacement = ShardPlanner(2).plan(build_index(final_entities()))
        path = tmp_path / "kb2.idx.shard0-of-2"
        replacement[0].save(path)
        worker = ShardWorker(MatchEngine(shards[0], CONFIG))
        body = worker.handle({"id": 1, "op": "reload", "path": str(path)})
        assert body["ok"]
        assert body["shard"] == 0
        assert worker.engine.index.shard_info["count"] == 2

    def test_reload_bad_path_reports_error(self):
        shards = ShardPlanner(1).plan(build_index(BASE))
        worker = ShardWorker(MatchEngine(shards[0], CONFIG))
        body = worker.handle({"id": 1, "op": "reload", "path": "/nonexistent.idx"})
        assert not body["ok"]
        assert "error" in body

    def test_match_honours_exclude_and_weights(self):
        # The wire fields the live router ships: dead base ids vanish
        # from the evidence rows, weight overrides rescale scores.
        index = build_index([entity(i, "shared") for i in range(4)])
        shard = ShardPlanner(1).plan(index)[0]
        worker = ShardWorker(MatchEngine(shard, CONFIG))
        plain = worker.handle({"id": 1, "op": "match", "tokens": ["shared"]})
        assert plain["ok"]
        ids = {row[0] for row in plain["row"]}
        assert ids == {0, 1, 2, 3}
        excluded = worker.handle(
            {"id": 2, "op": "match", "tokens": ["shared"], "exclude": [1, 3]}
        )
        assert {row[0] for row in excluded["row"]} == {0, 2}
        reweighted = worker.handle(
            {
                "id": 3,
                "op": "match",
                "tokens": ["shared"],
                "weights": {"shared": 0.5},
            }
        )
        assert all(row[1] == 0.5 for row in reweighted["row"])
