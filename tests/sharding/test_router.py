"""Sharded serving is bit-identical to the single-process engine.

The property sweep runs inline replicas (wire-faithful JSON round
trips, no subprocess overhead) over random shard counts in 1..8 on all
four calibrated benchmark profiles, comparing every decision field the
stream carries -- ids, scores, rules, degraded flags -- on both the
single-query and the batch path, with mmap on and off and across the
config variants that change the merge shape (adaptive cut, candidate
cap, reciprocity off).
"""

import random

import pytest

from repro.core.config import MinoanERConfig
from repro.datasets.profiles import scaled_profile
from repro.resilience.faults import parse_chaos, use_faults
from repro.serving import MatchEngine, ResolutionIndex
from repro.sharding import InlineReplica, ShardFailure, ShardPlanner, ShardRouter, ShardWorker

PROFILES = [
    ("restaurant", 0.3),
    ("rexa_dblp", 0.15),
    ("bbc_dbpedia", 0.2),
    ("yago_imdb", 0.15),
]


def inline_router(index, config, shards, **kwargs):
    replica_sets = [
        [InlineReplica(ShardWorker(MatchEngine(shard, config)))]
        for shard in ShardPlanner(shards).plan(index)
    ]
    return ShardRouter(index, replica_sets, config, **kwargs)


def decision_fields(decision):
    return (
        decision.query_uri,
        decision.kb2_id,
        decision.kb2_uri,
        decision.rule,
        decision.score,
        decision.candidates,
        decision.degraded,
    )


def assert_sharded_identical(pair, config, shards):
    index = ResolutionIndex.build(pair.kb2, config)
    engine = MatchEngine(index, config)
    batch = list(pair.kb1)
    router = inline_router(index, config, shards)
    try:
        expected_batch = [decision_fields(d) for d in engine.match_batch(batch)]
        actual_batch = [decision_fields(d) for d in router.match_batch(batch)]
        assert actual_batch == expected_batch
        expected_single = [decision_fields(engine.match(e)) for e in batch]
        actual_single = [decision_fields(router.match(e)) for e in batch]
        assert actual_single == expected_single
    finally:
        router.close()


class TestPropertySweep:
    @pytest.mark.parametrize("profile,scale", PROFILES)
    def test_random_shard_counts_all_profiles(self, profile, scale):
        rng = random.Random(f"shards:{profile}")
        counts = sorted({rng.randint(1, 8), rng.randint(1, 8)})
        pair = scaled_profile(profile, scale)
        for shards in counts:
            assert_sharded_identical(pair, MinoanERConfig(), shards)

    def test_every_count_one_through_eight(self, mini_pair):
        for shards in range(1, 9):
            assert_sharded_identical(mini_pair, MinoanERConfig(), shards)

    def test_with_adaptive_cut(self, mini_pair):
        assert_sharded_identical(
            mini_pair, MinoanERConfig(dynamic_pruning=True), 3
        )

    def test_with_candidate_cap(self, mini_pair):
        assert_sharded_identical(
            mini_pair, MinoanERConfig(serving_candidate_cap=5), 3
        )

    def test_without_reciprocity(self, mini_pair):
        assert_sharded_identical(
            mini_pair, MinoanERConfig(use_reciprocity=False), 3
        )

    def test_hard_profile(self, hard_pair):
        assert_sharded_identical(hard_pair, MinoanERConfig(), 4)


class TestMemmappedShards:
    def test_mmap_shards_identical(self, tmp_path):
        pytest.importorskip("numpy")
        pair = scaled_profile("restaurant", 0.3)
        config = MinoanERConfig()
        index = ResolutionIndex.build(pair.kb2, config)
        path = tmp_path / "kb2.idx"
        index.save(path)
        paths = ShardPlanner(3).write(index, path)

        full = ResolutionIndex.load(path, mmap=True)
        replica_sets = [
            [
                InlineReplica(
                    ShardWorker(
                        MatchEngine(ResolutionIndex.load(p, mmap=True), config)
                    )
                )
            ]
            for p in paths
        ]
        router = ShardRouter(full, replica_sets, config)
        engine = MatchEngine(index, config)
        batch = list(pair.kb1)
        try:
            assert [decision_fields(d) for d in router.match_batch(batch)] == [
                decision_fields(d) for d in engine.match_batch(batch)
            ]
            assert [decision_fields(router.match(e)) for e in batch] == [
                decision_fields(engine.match(e)) for e in batch
            ]
        finally:
            router.close()


class _DeadReplica:
    """A replica whose shard is structurally gone (every send fails)."""

    def __init__(self, shard):
        self.shard = shard
        self.breaker = None

    def send(self, op, payload, sink):
        raise ShardFailure(f"shard {self.shard} is gone")

    def cancel(self, rid):
        pass

    def request(self, op, payload=None, timeout=None):
        raise ShardFailure(f"shard {self.shard} is gone")

    def shutdown(self, timeout=None):
        pass

    def kill(self):
        pass


class TestChaosDegrade:
    """One shard killed in degrade mode: degraded-but-valid decisions."""

    KILLED = 1

    def _routers(self, index, config):
        shards = ShardPlanner(3).plan(index)
        chaos_router = ShardRouter(
            index,
            [
                [InlineReplica(ShardWorker(MatchEngine(shard, config)))]
                for shard in shards
            ],
            config,
        )
        structural_sets = [
            [InlineReplica(ShardWorker(MatchEngine(shard, config)))]
            for shard in shards
        ]
        structural_sets[self.KILLED] = [_DeadReplica(self.KILLED)]
        structural_router = ShardRouter(index, structural_sets, config)
        return chaos_router, structural_router

    def test_chaos_killed_shard_degrades_not_aborts(self, mini_pair):
        config = MinoanERConfig(failure_mode="degrade", breaker_threshold=1000)
        index = ResolutionIndex.build(mini_pair.kb2, config)
        batch = list(mini_pair.kb1)
        chaos_router, structural_router = self._routers(index, config)
        try:
            with use_faults(parse_chaos(f"shard:request:{self.KILLED}=error")):
                chaos_batch = chaos_router.match_batch(batch)
                chaos_single = [chaos_router.match(e) for e in batch]
            assert all(d.degraded for d in chaos_batch)
            assert all(d.degraded for d in chaos_single)

            # Chaos-killed and structurally-absent shards degrade to the
            # exact same decisions: the merge only sees survivors.
            expected_batch = structural_router.match_batch(batch)
            assert [decision_fields(d) for d in chaos_batch] == [
                decision_fields(d) for d in expected_batch
            ]
            expected_single = [structural_router.match(e) for e in batch]
            assert [decision_fields(d) for d in chaos_single] == [
                decision_fields(d) for d in expected_single
            ]
        finally:
            chaos_router.close()
            structural_router.close()

    def test_on_shard_error_fires_once_per_transition(self, mini_pair):
        config = MinoanERConfig(failure_mode="degrade", breaker_threshold=1000)
        index = ResolutionIndex.build(mini_pair.kb2, config)
        batch = list(mini_pair.kb1)[:10]
        errors = []
        shards = ShardPlanner(2).plan(index)
        router = ShardRouter(
            index,
            [
                [InlineReplica(ShardWorker(MatchEngine(shard, config)))]
                for shard in shards
            ],
            config,
            on_shard_error=lambda shard, error: errors.append(shard),
        )
        try:
            with use_faults(parse_chaos("shard:request:0=error")):
                for entity in batch:
                    router.match(entity)
            assert errors == [0], "hook fires once per healthy->down transition"
            # Recovery clears the down set; a later failure fires again.
            router.match_batch(batch[:2])
            assert router.stats()["sharding"]["down"] == []
            with use_faults(parse_chaos("shard:request:0=error")):
                router.match(batch[0])
            assert errors == [0, 0]
        finally:
            router.close()

    def test_fail_fast_propagates(self, mini_pair):
        config = MinoanERConfig(breaker_threshold=1000)  # fail_fast default
        index = ResolutionIndex.build(mini_pair.kb2, config)
        router = inline_router(index, config, 2)
        try:
            with use_faults(parse_chaos("shard:request:0=error")):
                with pytest.raises(ShardFailure):
                    router.match_batch(list(mini_pair.kb1)[:2])
        finally:
            router.close()

    def test_retry_recovers_from_transient_fault(self, mini_pair):
        config = MinoanERConfig(
            failure_mode="retry", retry_base_delay_s=0.0, breaker_threshold=1000
        )
        index = ResolutionIndex.build(mini_pair.kb2, config)
        engine = MatchEngine(index, config)
        batch = list(mini_pair.kb1)[:5]
        router = inline_router(index, config, 2)
        try:
            # A one-shot fault: the first attempt fails, the retry lands.
            with use_faults(parse_chaos("shard:request:0=error*1")):
                decisions = router.match_batch(batch)
            assert not any(d.degraded for d in decisions)
            assert [decision_fields(d) for d in decisions] == [
                decision_fields(d) for d in engine.match_batch(batch)
            ]
        finally:
            router.close()


class TestRouterBehaviour:
    def test_stats_carry_sharding_section(self, mini_pair):
        config = MinoanERConfig()
        index = ResolutionIndex.build(mini_pair.kb2, config)
        router = inline_router(index, config, 2)
        try:
            router.match(list(mini_pair.kb1)[0])
            section = router.stats()["sharding"]
            assert section["shards"] == 2
            assert section["requests"] >= 2
            assert section["failures"] == 0
        finally:
            router.close()

    def test_close_merges_worker_traces(self, mini_pair):
        config = MinoanERConfig()
        index = ResolutionIndex.build(mini_pair.kb2, config)
        router = inline_router(index, config, 2)
        router.match(list(mini_pair.kb1)[0])
        router.close()
        assert "shard.worker" in router.recorder.span_names()

    def test_single_query_caching_still_works(self, mini_pair):
        config = MinoanERConfig()
        index = ResolutionIndex.build(mini_pair.kb2, config)
        router = inline_router(index, config, 2)
        try:
            entity = list(mini_pair.kb1)[0]
            first = router.match(entity)
            second = router.match(entity)
            assert second.cached and not first.cached
            assert decision_fields(first) == decision_fields(second)
        finally:
            router.close()


class TestScatterModes:
    """``scatter=`` only changes *how* requests fan out, never the answer."""

    def test_sequential_and_pool_identical(self, mini_pair):
        config = MinoanERConfig()
        index = ResolutionIndex.build(mini_pair.kb2, config)
        engine = MatchEngine(index, config)
        batch = list(mini_pair.kb1)
        expected_single = [decision_fields(engine.match(e)) for e in batch]
        expected_batch = [decision_fields(d) for d in engine.match_batch(batch)]
        for scatter in ("sequential", "pool"):
            router = inline_router(index, config, 3, scatter=scatter)
            try:
                assert [
                    decision_fields(router.match(e)) for e in batch
                ] == expected_single
                assert [
                    decision_fields(d) for d in router.match_batch(batch)
                ] == expected_batch
            finally:
                router.close()

    def test_sequential_records_per_shard_timings(self, mini_pair):
        config = MinoanERConfig()
        index = ResolutionIndex.build(mini_pair.kb2, config)
        router = inline_router(index, config, 3, scatter="sequential")
        try:
            router.match(list(mini_pair.kb1)[0])
            assert router.last_shard_ms is not None
            assert len(router.last_shard_ms) == 3
            assert all(ms >= 0.0 for ms in router.last_shard_ms)
            # Workers self-time their compute into the response.
            assert router.last_service_ms is not None
            assert all(s is not None and s >= 0.0 for s in router.last_service_ms)
        finally:
            router.close()

    def test_pool_does_not_record_round_trips(self, mini_pair):
        config = MinoanERConfig()
        index = ResolutionIndex.build(mini_pair.kb2, config)
        router = inline_router(index, config, 2, scatter="pool")
        try:
            router.match(list(mini_pair.kb1)[0])
            # Overlapping round trips have no meaningful per-shard wall
            # time; service times still arrive with each response.
            assert router.last_shard_ms is None
            assert router.last_service_ms is not None
        finally:
            router.close()

    def test_rejects_unknown_mode(self, mini_pair):
        config = MinoanERConfig()
        index = ResolutionIndex.build(mini_pair.kb2, config)
        with pytest.raises(ValueError, match="scatter"):
            inline_router(index, config, 2, scatter="sideways")


class TestTokenShipping:
    """The router ships the purged token list; workers must derive the
    exact same evidence from it as from the entity itself."""

    def test_tokens_path_equals_entity_path(self, mini_pair):
        config = MinoanERConfig()
        index = ResolutionIndex.build(mini_pair.kb2, config)
        engine = MatchEngine(index, config)
        for entity in list(mini_pair.kb1)[:20]:
            tokens = engine.value_tokens(entity)
            assert engine.match_evidence(entity) == engine.match_evidence(
                None, tokens=tokens
            )

    def test_worker_accepts_token_requests(self, mini_pair):
        config = MinoanERConfig()
        index = ResolutionIndex.build(mini_pair.kb2, config)
        engine = MatchEngine(index, config)
        worker = ShardWorker(MatchEngine(index, config))
        entity = list(mini_pair.kb1)[0]
        response = worker.handle(
            {
                "id": 1,
                "op": "match",
                "tokens": engine.value_tokens(entity),
            }
        )
        assert response["ok"]
        assert response["service_ms"] >= 0.0
        evidence = engine.match_evidence(entity)
        assert response["row"] == evidence["row"]
        assert response["mins"] == evidence["mins"]
        assert response["count"] == evidence["count"]
