"""Self-healing shard fleets: SIGKILL, resurrection, equivalence.

The acceptance bar for the supervision layer: a worker killed with
``SIGKILL`` mid-stream -- while hedges fire, breakers trip and a
background compaction swaps the base out from under it -- must leave a
decision stream identical to a serve where nothing ever crashed.
Workers are pure functions of the frozen shard file plus the wire
payload, so a resurrected replica has nothing to "catch up" on; these
tests prove that end to end with real subprocess workers.

Real processes over pipes: slower than the inline suite, so it sticks
to the mini profile and small probe sets.
"""

import os
import signal
import time

import pytest

from repro.core.config import MinoanERConfig
from repro.resilience import ReplicaSupervisor
from repro.serving import MatchEngine, ResolutionIndex
from repro.serving.compaction import CompactionScheduler
from repro.sharding import LiveShardRouter, ShardFailure, ShardPlanner, ShardRouter


def build_sharded(pair, tmp_path, config, shards):
    index = ResolutionIndex.build(pair.kb2, config)
    path = tmp_path / "kb2.idx"
    index.save(path)
    ShardPlanner(shards).write(index, path)
    return index, path


def sigkill(replica) -> None:
    """The real thing: SIGKILL the worker process, no cleanup courtesy."""
    os.kill(replica.proc.pid, signal.SIGKILL)
    replica.proc.wait(timeout=10.0)


def decision_fields(decision):
    # No ``kb2_id``: a post-compaction base legitimately renumbers.
    return (
        decision.query_uri,
        decision.kb2_uri,
        decision.rule,
        decision.score,
        decision.candidates,
        decision.degraded,
    )


class TestResurrect:
    def test_resurrect_replaces_a_dead_worker(self, mini_pair, tmp_path):
        config = MinoanERConfig(failure_mode="degrade")
        index, path = build_sharded(mini_pair, tmp_path, config, 2)
        engine = MatchEngine(index, config)
        batch = list(mini_pair.kb1)[:10]
        router = ShardRouter.spawn(path, 2, mmap=False, config=config)
        try:
            dead = router._replicas[0][0]
            sigkill(dead)
            assert not dead.alive
            assert router.resurrect(0, 0) is True
            fresh = router._replicas[0][0]
            assert fresh is not dead and fresh.alive
            assert router.match_batch(batch) == engine.match_batch(batch)
            assert router.stats()["sharding"]["resurrections"] == 1
        finally:
            router.close()

    def test_resurrect_skips_living_slots_and_closed_routers(
        self, mini_pair, tmp_path
    ):
        config = MinoanERConfig()
        _, path = build_sharded(mini_pair, tmp_path, config, 2)
        router = ShardRouter.spawn(path, 2, mmap=False, config=config)
        try:
            assert router.resurrect(0, 0) is False  # alive: no-op
        finally:
            router.close()
        assert router.resurrect(0, 0) is False  # closed: no-op

    def test_resurrected_worker_gets_a_breaker(self, mini_pair, tmp_path):
        config = MinoanERConfig()
        _, path = build_sharded(mini_pair, tmp_path, config, 2)
        router = ShardRouter.spawn(path, 2, mmap=False, config=config)
        try:
            sigkill(router._replicas[1][0])
            router.resurrect(1, 0)
            assert router._replicas[1][0].breaker is not None
        finally:
            router.close()


class TestSigkillMidStream:
    def test_kill_hedge_trip_resurrect_identical_stream(
        self, mini_pair, tmp_path
    ):
        """Satellite: SIGKILL mid-request -> hedge covers, breaker
        records the corpse, supervisor resurrects, and the decision
        stream diffs clean against an uncrashed serve."""
        config = MinoanERConfig(serving_hedge_ms=0.0, failure_mode="degrade")
        index, path = build_sharded(mini_pair, tmp_path, config, 2)
        engine = MatchEngine(index, config)
        batch = list(mini_pair.kb1)[:12]
        expected = engine.match_batch(batch) + [
            engine.match(probe) for probe in batch
        ]
        router = ShardRouter.spawn(path, 2, replicas=2, mmap=False, config=config)
        supervisor = ReplicaSupervisor(
            router, base_backoff_s=0.0, jitter_ratio=0.0
        )
        try:
            victim = router._replicas[0][0]
            sigkill(victim)  # mid-stream: between the batch and singles
            streamed = router.match_batch(batch)
            # The sibling replica covered for the corpse: nothing
            # degraded, and with hedging on, backups fired.
            assert not any(d.degraded for d in streamed)
            assert victim.breaker._failures > 0 or victim.breaker.state != "closed"
            healed = supervisor.tick()
            assert healed == 1
            assert supervisor.restarts == 1
            assert router._replicas[0][0].alive
            streamed += [router.match(probe) for probe in batch]
            assert streamed == expected
            assert router.stats()["sharding"]["hedge_fired"] > 0
        finally:
            supervisor.close()
            router.close()

    def test_spawn_supervise_heals_in_background(self, mini_pair, tmp_path):
        config = MinoanERConfig(failure_mode="degrade")
        index, path = build_sharded(mini_pair, tmp_path, config, 2)
        engine = MatchEngine(index, config)
        batch = list(mini_pair.kb1)[:8]
        router = ShardRouter.spawn(
            path, 2, mmap=False, config=config,
            supervise=True,
            supervisor_options=dict(
                interval_s=0.02, base_backoff_s=0.0, jitter_ratio=0.0
            ),
        )
        try:
            assert router.supervisor is not None
            sigkill(router._replicas[1][0])
            deadline = time.monotonic() + 30.0
            while (
                router.supervisor.restarts == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert router.supervisor.restarts >= 1
            assert router.match_batch(batch) == engine.match_batch(batch)
            stats = router.stats()["sharding"]
            assert stats["supervisor"]["restarts"] >= 1
        finally:
            router.close()  # also closes the supervisor
        assert router.supervisor._thread is None


class TestResurrectionEquivalence:
    def test_kill_supervise_compact_stream_equals_quiet_serve(
        self, mini_pair, tmp_path
    ):
        """Acceptance: SIGKILL + supervised resurrection + mid-stream
        background compaction == an uncrashed, uncompacted serve."""
        config = MinoanERConfig(failure_mode="degrade")
        index, path = build_sharded(mini_pair, tmp_path, config, 2)
        kb1 = list(mini_pair.kb1)
        probes = kb1[:18]
        edits = list(mini_pair.kb2)[:2]

        def run(name: str, crash: bool, compact: bool):
            # Private copies of the index and shard files: the chaotic
            # run's compaction rewrites them on disk.
            import shutil

            from repro.sharding import shard_paths

            run_dir = tmp_path / name
            run_dir.mkdir()
            run_path = run_dir / path.name
            shutil.copy(path, run_path)
            for shard_file in shard_paths(path, 2):
                shutil.copy(shard_file, run_dir / shard_file.name)
            base = ResolutionIndex.load(run_path)
            router = LiveShardRouter.spawn(
                run_path, 2, replicas=2, mmap=False, config=config, index=base
            )
            router.index_path = run_path
            supervisor = ReplicaSupervisor(
                router, base_backoff_s=0.0, jitter_ratio=0.0
            )
            scheduler = CompactionScheduler(
                router, max_delta=1, path=run_path, clock=time.monotonic
            )
            out = []
            try:
                # Phase 1: mutate (delta overlay) and serve a slice.
                for entity in edits:
                    router.delete(entity.uri)
                out += router.match_batch(probes[:6])
                # Phase 2: the crash.
                if crash:
                    sigkill(router._replicas[0][0])
                out += router.match_batch(probes[6:12])
                if crash:
                    while supervisor.tick() == 0:
                        time.sleep(0.01)
                    assert supervisor.restarts == 1
                # Phase 3: background compaction mid-stream: re-shards
                # the base on disk and swaps the whole fleet.
                if compact:
                    assert scheduler.due() == "delta"
                    assert scheduler.tick() is True
                    assert router.index.delta.allocated + len(
                        router.index.delta.dead_base
                    ) == 0
                out += router.match_batch(probes[12:])
                out += [router.match(probe) for probe in probes[:4]]
            finally:
                supervisor.close()
                router.close()
            return [decision_fields(d) for d in out]

        quiet = run("quiet", crash=False, compact=False)
        chaotic = run("chaotic", crash=True, compact=True)
        assert chaotic == quiet

    def test_resurrection_refuses_a_stale_epoch(self, mini_pair, tmp_path):
        """A worker spawned before a base swap maps the old shard file;
        readmitting it would serve stale bytes.  The gate re-checks the
        swap epoch and discards it."""
        config = MinoanERConfig(failure_mode="degrade")
        index, path = build_sharded(mini_pair, tmp_path, config, 2)
        base = ResolutionIndex.load(path)
        router = LiveShardRouter.spawn(
            path, 2, replicas=2, mmap=False, config=config, index=base
        )
        try:
            sigkill(router._replicas[0][0])
            original_factory = router._replica_factory

            def swapping_factory(shard):
                # A compaction completes while the fresh worker spawns.
                replica = original_factory(shard)
                router.delete(list(mini_pair.kb2)[0].uri)
                router.compact(path)
                return replica

            router._replica_factory = swapping_factory
            with pytest.raises(ShardFailure, match="swapped during resurrection"):
                router.resurrect(0, 0)
            router._replica_factory = original_factory
            # The retry (what the supervisor would do) maps the new
            # base and succeeds.
            assert router.resurrect(0, 0) is True
            assert router._replicas[0][0].alive
        finally:
            router.close()
