"""ShardPlanner invariants: partitioning, shard files, round-trips."""

import hashlib

import pytest

from repro.core.config import MinoanERConfig
from repro.serving import ResolutionIndex
from repro.sharding import ShardPlanner, partition_of, shard_paths


@pytest.fixture
def index(mini_pair):
    return ResolutionIndex.build(mini_pair.kb2, MinoanERConfig())


class TestPartitioning:
    def test_partition_is_stable_and_in_range(self, index):
        for count in (1, 2, 3, 7):
            owners = [partition_of(uri, count) for uri in index.uris2]
            assert owners == [partition_of(uri, count) for uri in index.uris2]
            assert all(0 <= owner < count for owner in owners)

    def test_every_shard_nonempty_at_small_counts(self, index):
        owners = ShardPlanner(3).owners(index)
        assert set(owners) == {0, 1, 2}

    def test_shard_paths_naming(self, tmp_path):
        paths = shard_paths(tmp_path / "kb2.idx", 3)
        assert [path.name for path in paths] == [
            "kb2.idx.shard0-of-3",
            "kb2.idx.shard1-of-3",
            "kb2.idx.shard2-of-3",
        ]

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            ShardPlanner(0)


class TestPlan:
    def test_postings_partition_disjointly_and_cover(self, index):
        shards = ShardPlanner(3).plan(index)
        for token, ids in index.postings.items():
            pieces = [list(shard.postings[token]) for shard in shards]
            merged = sorted(eid for piece in pieces for eid in piece)
            assert merged == sorted(ids)

    def test_full_token_table_on_every_shard(self, index):
        # Unowned tokens keep an *empty* posting list: membership (which
        # gates block formation) must stay global on every shard.
        for shard in ShardPlanner(4).plan(index):
            assert set(shard.postings) == set(index.postings)

    def test_global_ef_and_weights_preserved(self, index):
        for shard in ShardPlanner(3).plan(index):
            for token, ids in index.postings.items():
                assert shard.global_entity_frequency(token) == len(ids)
            assert dict(shard.singleton_weights) == dict(index.singleton_weights)

    def test_names_are_owned_singletons_only(self, index):
        shards = ShardPlanner(3).plan(index)
        owners = ShardPlanner(3).owners(index)
        seen = {}
        for position, shard in enumerate(shards):
            for name, ids in shard.names.items():
                assert len(ids) == 1
                assert owners[ids[0]] == position
                assert name not in seen
                seen[name] = position
        singletons = {n for n, ids in index.names.items() if len(ids) == 1}
        assert set(seen) == singletons

    def test_global_id_space_and_metadata(self, index):
        for shard in ShardPlanner(2).plan(index):
            assert shard.n2 == index.n2
            assert list(shard.uris2) == list(index.uris2)
            assert shard.config == index.config

    def test_shard_info_descriptor(self, index):
        shards = ShardPlanner(3).plan(index)
        for position, shard in enumerate(shards):
            assert shard.shard_info == {
                "count": 3,
                "index": position,
                "partition": "crc32",
            }
            assert shard.describe()["shard"] == f"{position}/3"

    def test_refuses_to_reshard_a_shard(self, index):
        shard = ShardPlanner(2).plan(index)[0]
        with pytest.raises(ValueError, match="re-shard"):
            ShardPlanner(3).plan(shard)


class TestPersistence:
    def test_shard_files_roundtrip_byte_identically(self, index, tmp_path):
        paths = ShardPlanner(3).write(index, tmp_path / "kb2.idx")
        for path in paths:
            loaded = ResolutionIndex.load(path)
            assert loaded.shard_info is not None
            assert loaded.token_global_ef is not None
            resaved = tmp_path / f"{path.name}.resave"
            loaded.save(resaved)
            assert (
                hashlib.sha256(path.read_bytes()).digest()
                == hashlib.sha256(resaved.read_bytes()).digest()
            )

    def test_mmap_loads_shard_file(self, index, tmp_path):
        pytest.importorskip("numpy")
        paths = ShardPlanner(2).write(index, tmp_path / "kb2.idx")
        mapped = ResolutionIndex.load(paths[0], mmap=True)
        eager = ResolutionIndex.load(paths[0])
        assert mapped.shard_info == eager.shard_info
        for token, ids in eager.postings.items():
            assert list(mapped.postings[token]) == list(ids)
            assert mapped.global_entity_frequency(token) == eager.global_entity_frequency(token)

    def test_unsharded_save_has_no_shard_sections(self, index, tmp_path):
        # Byte-identity of non-shard files: the optional section and
        # header key only appear when the fields are present.
        path = tmp_path / "plain.idx"
        index.save(path)
        loaded = ResolutionIndex.load(path)
        assert loaded.shard_info is None
        assert loaded.token_global_ef is None
