"""Unit tests for top-K candidate pruning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.pruning import top_k_candidates


class TestTopK:
    def test_orders_by_score_descending(self):
        assert top_k_candidates({1: 0.5, 2: 2.0, 3: 1.0}, 3) == ((2, 2.0), (3, 1.0), (1, 0.5))

    def test_truncates_to_k(self):
        result = top_k_candidates({i: float(i) for i in range(1, 11)}, 4)
        assert [c for c, _ in result] == [10, 9, 8, 7]

    def test_zero_scores_never_retained(self):
        assert top_k_candidates({1: 0.0, 2: -1.0}, 5) == ()

    def test_ties_break_on_ascending_id(self):
        assert top_k_candidates({5: 1.0, 3: 1.0, 4: 1.0}, 2) == ((3, 1.0), (4, 1.0))

    def test_k_zero(self):
        assert top_k_candidates({1: 1.0}, 0) == ()

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            top_k_candidates({}, -1)

    def test_empty_scores(self):
        assert top_k_candidates({}, 3) == ()


scores_strategy = st.dictionaries(
    st.integers(0, 50), st.floats(-2.0, 5.0, allow_nan=False), max_size=20
)


class TestTopKProperties:
    @given(scores=scores_strategy, k=st.integers(0, 25))
    @settings(max_examples=80)
    def test_result_is_sorted_positive_subset(self, scores, k):
        result = top_k_candidates(scores, k)
        assert len(result) <= k
        previous = float("inf")
        for candidate, score in result:
            assert score > 0.0
            assert scores[candidate] == score
            assert score <= previous
            previous = score

    @given(scores=scores_strategy, k=st.integers(1, 25))
    @settings(max_examples=80)
    def test_keeps_the_best(self, scores, k):
        result = top_k_candidates(scores, k)
        kept = {c for c, _ in result}
        positive = {c: s for c, s in scores.items() if s > 0.0}
        if positive:
            best = max(positive, key=lambda c: (positive[c], -c))
            assert best in kept

    @given(scores=scores_strategy)
    @settings(max_examples=40)
    def test_large_k_keeps_all_positive(self, scores):
        result = top_k_candidates(scores, len(scores) + 5)
        assert len(result) == sum(1 for s in scores.values() if s > 0.0)
