"""Unit tests for the pruned disjunctive blocking graph structure."""

import pytest

from repro.graph.blocking_graph import DisjunctiveBlockingGraph


@pytest.fixture
def small_graph() -> DisjunctiveBlockingGraph:
    """2 x 3 graph: node a0 has a name match with b0; value and neighbor
    candidates are asymmetric to exercise directionality."""
    return DisjunctiveBlockingGraph(
        n1=2,
        n2=3,
        name_matches_1={0: 0},
        name_matches_2={0: 0},
        value_candidates_1=[((0, 2.0), (1, 1.0)), ((2, 0.5),)],
        value_candidates_2=[((0, 2.0),), ((0, 1.0),), ()],
        neighbor_candidates_1=[((1, 3.0),), ()],
        neighbor_candidates_2=[(), ((0, 3.0),), ((1, 0.7),)],
    )


class TestAccessors:
    def test_name_match(self, small_graph):
        assert small_graph.name_match(1, 0) == 0
        assert small_graph.name_match(1, 1) is None
        assert small_graph.name_match(2, 0) == 0

    def test_value_candidates_sorted(self, small_graph):
        assert small_graph.value_candidates(1, 0) == ((0, 2.0), (1, 1.0))

    def test_beta_lookup(self, small_graph):
        assert small_graph.beta(1, 0, 1) == 1.0
        assert small_graph.beta(1, 0, 2) == 0.0
        assert small_graph.beta(2, 1, 0) == 1.0

    def test_gamma_lookup(self, small_graph):
        assert small_graph.gamma(1, 0, 1) == 3.0
        assert small_graph.gamma(2, 2, 1) == 0.7

    def test_invalid_side_rejected(self, small_graph):
        with pytest.raises(ValueError):
            small_graph.value_candidates(3, 0)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            DisjunctiveBlockingGraph(2, 1, {}, {}, [()], [()], [(), ()], [()])


class TestDirectedEdges:
    def test_edge_union_of_evidence_types(self, small_graph):
        # a0 -> b0 (name + value), a0 -> b1 (value + neighbor)
        assert small_graph.has_directed_edge(1, 0, 0)
        assert small_graph.has_directed_edge(1, 0, 1)
        assert not small_graph.has_directed_edge(1, 0, 2)

    def test_directionality(self, small_graph):
        # a1 -> b2 exists (value), but b2 -> a1 only via neighbor list
        assert small_graph.has_directed_edge(1, 1, 2)
        assert small_graph.has_directed_edge(2, 2, 1)
        # b2's only candidates are (1,); b2 -> a0 absent
        assert not small_graph.has_directed_edge(2, 2, 0)

    def test_reciprocity(self, small_graph):
        assert small_graph.is_reciprocal(0, 0)
        assert small_graph.is_reciprocal(1, 2)
        assert not small_graph.is_reciprocal(0, 2)

    def test_edge_count_matches_enumeration(self, small_graph):
        edges = list(small_graph.directed_edges())
        assert small_graph.edge_count() == len(edges)
        assert (1, 0, 0) in edges

    def test_undirected_pairs(self, small_graph):
        pairs = small_graph.undirected_pairs()
        assert (0, 0) in pairs
        assert (1, 2) in pairs
        assert (0, 2) not in pairs

    def test_repr_mentions_edges(self, small_graph):
        assert "directed_edges" in repr(small_graph)


class TestNetworkxExport:
    def test_exports_nodes_and_weighted_edges(self, small_graph):
        networkx = pytest.importorskip("networkx")
        exported = small_graph.to_networkx()
        assert exported.number_of_nodes() == small_graph.n1 + small_graph.n2
        assert exported.number_of_edges() == small_graph.edge_count()
        edge = exported.edges[("E1", 0), ("E2", 0)]
        assert edge["alpha"] == 1.0
        assert edge["beta"] == 2.0

    def test_gamma_attribute(self, small_graph):
        pytest.importorskip("networkx")
        exported = small_graph.to_networkx()
        assert exported.edges[("E1", 0), ("E2", 1)]["gamma"] == 3.0

    def test_reciprocity_visible_as_bidirectional_edges(self, small_graph):
        pytest.importorskip("networkx")
        exported = small_graph.to_networkx()
        assert exported.has_edge(("E1", 0), ("E2", 0))
        assert exported.has_edge(("E2", 0), ("E1", 0))
