"""Unit tests for Algorithm 1: graph construction, weighting, pruning."""

import math

import pytest

from repro.blocking.base import Block, BlockCollection
from repro.blocking.name_blocking import name_blocks
from repro.blocking.token_blocking import token_blocks
from repro.graph.construction import (
    accumulate_beta,
    build_blocking_graph,
    name_evidence,
    neighbor_evidence,
    retained_beta_edges,
    transpose_beta,
    value_evidence,
)
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.statistics import KBStatistics
from repro.similarity.value import value_similarity


class TestNameEvidence:
    def test_singleton_blocks_give_alpha_edges(self):
        blocks = BlockCollection([Block("n", [3], [7]), Block("m", [1, 2], [5])])
        forward, reverse = name_evidence(blocks)
        assert forward == {3: 7}
        assert reverse == {7: 3}

    def test_conflicting_singletons_resolved_by_order(self):
        blocks = BlockCollection([Block("n1", [3], [7]), Block("n2", [3], [8])])
        forward, reverse = name_evidence(blocks)
        assert forward == {3: 7}
        assert 8 not in reverse

    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    def test_first_wins_follows_collection_order_under_shuffle(self, seed):
        """Regression: the winning alpha edge is a pure function of the
        block *collection order* -- nothing else.  Shuffling the blocks
        may change which conflicting singleton wins, but the winner must
        always be the first eligible block of the shuffled order, and
        re-running on the same order must reproduce it exactly."""
        import random

        blocks = [Block(f"n{i}", [i % 5], [10 + i]) for i in range(20)]
        blocks += [Block(f"m{i}", [i % 5 + 5], [10 + i]) for i in range(20)]
        shuffled = list(blocks)
        random.Random(seed).shuffle(shuffled)
        collection = BlockCollection(shuffled)

        forward, reverse = name_evidence(collection)
        # Replay the documented rule over the shuffled order.
        expected_forward: dict[int, int] = {}
        expected_reverse: dict[int, int] = {}
        for block in shuffled:
            if block.is_singleton_pair:
                eid1, eid2 = block.side1[0], block.side2[0]
                if eid1 not in expected_forward and eid2 not in expected_reverse:
                    expected_forward[eid1] = eid2
                    expected_reverse[eid2] = eid1
        assert forward == expected_forward
        assert reverse == expected_reverse
        # Same insertion order in again: bitwise repeatable.
        assert name_evidence(collection) == (forward, reverse)


class TestValueEvidence:
    def test_beta_reconstructs_value_similarity(self):
        """beta accumulated from token blocks equals Definition 2.1."""
        kb1 = KnowledgeBase(
            [
                EntityDescription("a0", [("v", "fat duck bray")]),
                EntityDescription("a1", [("v", "bray village")]),
            ],
            name="kb1",
        )
        kb2 = KnowledgeBase(
            [
                EntityDescription("b0", [("v", "the fat duck")]),
                EntityDescription("b1", [("v", "bray berkshire")]),
            ],
            name="kb2",
        )
        blocks = token_blocks(kb1, kb2)  # unpurged: full valueSim
        beta = accumulate_beta(blocks, len(kb1))
        for eid1 in range(len(kb1)):
            for eid2 in range(len(kb2)):
                expected = value_similarity(kb1, kb2, eid1, eid2)
                assert beta[eid1].get(eid2, 0.0) == pytest.approx(expected)

    def test_block_weight_formula(self):
        blocks = BlockCollection([Block("t", [0, 1], [0, 1, 2])])
        beta = accumulate_beta(blocks, 2)
        expected = 1.0 / math.log2(6 + 1)
        assert beta[0][2] == pytest.approx(expected)

    def test_transpose_is_involution(self):
        rows = [{0: 1.0, 1: 2.0}, {1: 0.5}]
        columns = transpose_beta(rows, 2)
        assert transpose_beta(columns, 2) == rows

    def test_top_k_applied_per_side(self):
        blocks = BlockCollection(
            [Block(f"t{i}", [0], [i]) for i in range(5)]
        )
        side1, side2 = value_evidence(blocks, 1, 5, k=2)
        assert len(side1[0]) == 2
        for eid2 in range(5):
            assert len(side2[eid2]) <= 2


class TestRetainedEdges:
    def test_union_of_both_directions(self):
        side1 = [((0, 1.0),)]
        side2 = [((0, 1.0),), ((0, 0.4),)]
        edges = retained_beta_edges(side1, side2)
        assert edges == {(0, 0): 1.0, (0, 1): 0.4}


class TestNeighborEvidence:
    def test_gamma_propagates_beta_to_in_neighbor_pairs(self):
        """Figure 3 example: beta(Bray, Berkshire) + beta(JohnLakeA, JonnyLake)
        flow into gamma(Restaurant1, Restaurant2)."""
        kb1 = KnowledgeBase(
            [
                EntityDescription("R1", [("chef", "JL"), ("place", "Bray")]),
                EntityDescription("JL", [("v", "john lake")]),
                EntityDescription("Bray", [("v", "bray berkshire")]),
            ],
            name="kb1",
        )
        kb2 = KnowledgeBase(
            [
                EntityDescription("R2", [("headchef", "JL2"), ("county", "Berks")]),
                EntityDescription("JL2", [("v", "jonny lake")]),
                EntityDescription("Berks", [("v", "berkshire bray county")]),
            ],
            name="kb2",
        )
        stats1 = KBStatistics(kb1, top_n_relations=2)
        stats2 = KBStatistics(kb2, top_n_relations=2)
        beta_edges = {
            (1, 1): 0.4,  # JL ~ JL2
            (2, 2): 1.2,  # Bray ~ Berks
        }
        side1, side2 = neighbor_evidence(beta_edges, stats1, stats2, k=5)
        gamma = dict(side1[0])
        assert gamma[0] == pytest.approx(1.6)  # R1 -> R2 sums both

    def test_no_in_neighbors_no_gamma(self):
        kb = KnowledgeBase([EntityDescription("x", [("v", "t")])], name="k")
        stats = KBStatistics(kb)
        side1, side2 = neighbor_evidence({(0, 0): 1.0}, stats, stats, k=3)
        assert side1 == [()]
        assert side2 == [()]


class TestBuildBlockingGraph:
    def test_end_to_end_small(self, restaurant_kbs):
        kb1, kb2 = restaurant_kbs
        stats1 = KBStatistics(kb1, top_k_name_attributes=2, top_n_relations=3)
        stats2 = KBStatistics(kb2, top_k_name_attributes=2, top_n_relations=3)
        graph = build_blocking_graph(
            stats1, stats2, name_blocks(stats1, stats2), token_blocks(kb1, kb2), k=5
        )
        chef1, chef2 = kb1.id_of("wd:JohnLakeA"), kb2.id_of("db:JonnyLake")
        r1, r2 = kb1.id_of("wd:Restaurant1"), kb2.id_of("db:Restaurant2")
        # The chefs share the exclusive name "J. Lake": alpha edge.
        assert graph.name_match(1, chef1) == chef2
        # The restaurants share "fat duck" tokens: beta edge.
        assert graph.beta(1, r1, r2) > 0
        # Their neighbors are value-similar: gamma edge.
        assert graph.gamma(1, r1, r2) > 0

    @pytest.mark.parametrize("backend", ["python", "numpy", "auto"])
    @pytest.mark.parametrize("dynamic", [False, True])
    def test_kernel_backends_bit_identical(self, restaurant_kbs, backend, dynamic):
        if backend == "numpy":
            pytest.importorskip("numpy")
        kb1, kb2 = restaurant_kbs
        stats1 = KBStatistics(kb1)
        stats2 = KBStatistics(kb2)
        names = name_blocks(stats1, stats2)
        tokens = token_blocks(kb1, kb2)
        reference = build_blocking_graph(
            stats1, stats2, names, tokens, k=5, dynamic_pruning=dynamic
        )
        kernel = build_blocking_graph(
            stats1, stats2, names, tokens, k=5, dynamic_pruning=dynamic,
            backend=backend,
        )
        assert kernel.identical(reference)

    def test_unknown_backend_rejected(self, restaurant_kbs):
        kb1, kb2 = restaurant_kbs
        stats1 = KBStatistics(kb1)
        stats2 = KBStatistics(kb2)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            build_blocking_graph(
                stats1, stats2, name_blocks(stats1, stats2),
                token_blocks(kb1, kb2), backend="bogus",
            )

    def test_k_bounds_candidate_lists(self, mini_pair):
        pair = mini_pair
        stats1 = KBStatistics(pair.kb1)
        stats2 = KBStatistics(pair.kb2)
        graph = build_blocking_graph(
            stats1,
            stats2,
            name_blocks(stats1, stats2),
            token_blocks(pair.kb1, pair.kb2),
            k=3,
        )
        for eid in range(graph.n1):
            assert len(graph.value_candidates(1, eid)) <= 3
            assert len(graph.neighbor_candidates(1, eid)) <= 3
        for eid in range(graph.n2):
            assert len(graph.value_candidates(2, eid)) <= 3
            assert len(graph.neighbor_candidates(2, eid)) <= 3
