"""Tests for dynamic (adaptive) candidate pruning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MinoanERConfig
from repro.core.pipeline import MinoanER
from repro.graph.pruning import adaptive_candidates, top_k_candidates


class TestAdaptiveCandidates:
    def test_cuts_at_large_gap(self):
        scores = {1: 10.0, 2: 9.5, 3: 0.1, 4: 0.05}
        assert adaptive_candidates(scores, 4, minimum=2) == ((1, 10.0), (2, 9.5))

    def test_flat_distribution_keeps_full_k(self):
        scores = {i: 1.0 - 0.01 * i for i in range(10)}
        assert len(adaptive_candidates(scores, 8)) == 8

    def test_respects_minimum(self):
        scores = {1: 100.0, 2: 0.001, 3: 0.001, 4: 0.001}
        kept = adaptive_candidates(scores, 4, minimum=3)
        assert len(kept) == 3

    def test_never_exceeds_k(self):
        scores = {i: 1.0 for i in range(20)}
        assert len(adaptive_candidates(scores, 5)) <= 5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            adaptive_candidates({}, 5, gap_ratio=0.0)
        with pytest.raises(ValueError):
            adaptive_candidates({}, 5, minimum=0)

    @given(
        scores=st.dictionaries(
            st.integers(0, 30), st.floats(0.01, 10.0, allow_nan=False), max_size=20
        ),
        k=st.integers(1, 15),
    )
    @settings(max_examples=80)
    def test_adaptive_is_prefix_of_top_k(self, scores, k):
        full = top_k_candidates(scores, k)
        adaptive = adaptive_candidates(scores, k)
        assert adaptive == full[: len(adaptive)]


class TestDynamicPruningConfig:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MinoanERConfig(pruning_gap_ratio=1.5)

    def test_pipeline_with_dynamic_pruning(self, mini_pair):
        fixed = MinoanER().resolve(mini_pair.kb1, mini_pair.kb2)
        dynamic = MinoanER(MinoanERConfig(dynamic_pruning=True)).resolve(
            mini_pair.kb1, mini_pair.kb2
        )
        gt = mini_pair.ground_truth
        # Dynamic pruning must keep a (weak) subset of each node's list,
        # so the candidate graph shrinks while quality stays close.
        assert dynamic.graph.edge_count() <= fixed.graph.edge_count()
        assert dynamic.evaluate(gt).f1 > fixed.evaluate(gt).f1 - 0.1

    def test_candidate_lists_are_prefixes(self, mini_pair):
        fixed = MinoanER().resolve(mini_pair.kb1, mini_pair.kb2)
        dynamic = MinoanER(MinoanERConfig(dynamic_pruning=True)).resolve(
            mini_pair.kb1, mini_pair.kb2
        )
        for eid in range(fixed.graph.n1):
            full = fixed.graph.value_candidates(1, eid)
            cut = dynamic.graph.value_candidates(1, eid)
            assert cut == full[: len(cut)]
