"""Unit tests for Unique Mapping Clustering."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.unique_mapping import unique_mapping_clustering


class TestUniqueMapping:
    def test_greedy_highest_first(self):
        matches = unique_mapping_clustering([(0, 0, 0.9), (0, 1, 0.8), (1, 1, 0.7)])
        assert matches == {(0, 0), (1, 1)}

    def test_conflicting_pair_skipped(self):
        matches = unique_mapping_clustering([(0, 0, 0.9), (1, 0, 0.8)])
        assert matches == {(0, 0)}

    def test_threshold_excludes_pairs(self):
        matches = unique_mapping_clustering([(0, 0, 0.5), (1, 1, 0.2)], threshold=0.3)
        assert matches == {(0, 0)}

    def test_threshold_is_strict(self):
        assert unique_mapping_clustering([(0, 0, 0.3)], threshold=0.3) == set()

    def test_empty_input(self):
        assert unique_mapping_clustering([]) == set()

    def test_tie_broken_deterministically(self):
        matches = unique_mapping_clustering([(1, 1, 0.5), (0, 0, 0.5), (0, 1, 0.5)])
        assert matches == {(0, 0), (1, 1)}

    def test_generator_input_accepted(self):
        matches = unique_mapping_clustering(iter([(0, 0, 1.0)]))
        assert matches == {(0, 0)}


scored_pairs = st.lists(
    st.tuples(st.integers(0, 10), st.integers(0, 10), st.floats(0.01, 1.0, allow_nan=False)),
    max_size=40,
)


class TestProperties:
    @given(pairs=scored_pairs)
    @settings(max_examples=80)
    def test_output_is_one_to_one(self, pairs):
        matches = unique_mapping_clustering(pairs)
        lefts = [a for a, _ in matches]
        rights = [b for _, b in matches]
        assert len(lefts) == len(set(lefts))
        assert len(rights) == len(set(rights))

    @given(pairs=scored_pairs)
    @settings(max_examples=80)
    def test_output_subset_of_input(self, pairs):
        matches = unique_mapping_clustering(pairs)
        candidates = {(a, b) for a, b, _ in pairs}
        assert matches <= candidates

    @given(pairs=scored_pairs)
    @settings(max_examples=80)
    def test_maximal_greedy(self, pairs):
        """No unmatched candidate pair could still be added."""
        matches = unique_mapping_clustering(pairs)
        matched_1 = {a for a, _ in matches}
        matched_2 = {b for _, b in matches}
        for a, b, score in pairs:
            if score > 0.0 and (a, b) not in matches:
                assert a in matched_1 or b in matched_2
