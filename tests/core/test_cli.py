"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.kb.rdf import save_ntriples


@pytest.fixture
def dataset_dir(tmp_path, mini_pair):
    save_ntriples(mini_pair.kb1, tmp_path / "kb1.nt")
    save_ntriples(mini_pair.kb2, tmp_path / "kb2.nt")
    with (tmp_path / "gt.tsv").open("w", encoding="utf-8") as handle:
        for uri1, uri2 in sorted(mini_pair.uri_ground_truth):
            handle.write(f"{uri1}\t{uri2}\n")
    return tmp_path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_resolve_defaults(self):
        args = build_parser().parse_args(["resolve", "a.nt", "b.nt"])
        assert args.theta == 0.6
        assert args.candidates == 15

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestResolveCommand:
    def test_resolve_writes_matches(self, dataset_dir, capsys):
        out = dataset_dir / "matches.tsv"
        code = main(
            [
                "resolve",
                str(dataset_dir / "kb1.nt"),
                str(dataset_dir / "kb2.nt"),
                "-o",
                str(out),
                "--ground-truth",
                str(dataset_dir / "gt.tsv"),
            ]
        )
        assert code == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) > 10
        assert all("\t" in line for line in lines)
        stderr = capsys.readouterr().err
        assert "quality" in stderr

    def test_resolve_to_stdout(self, dataset_dir, capsys):
        main(["resolve", str(dataset_dir / "kb1.nt"), str(dataset_dir / "kb2.nt")])
        stdout = capsys.readouterr().out
        assert "kb1:" in stdout

    def test_config_flags_forwarded(self, dataset_dir, capsys):
        code = main(
            [
                "resolve",
                str(dataset_dir / "kb1.nt"),
                str(dataset_dir / "kb2.nt"),
                "--theta",
                "0.5",
                "--no-neighbors",
            ]
        )
        assert code == 0


class TestTraceFlag:
    def test_resolve_trace_covers_phases(self, dataset_dir, capsys):
        trace = dataset_dir / "trace.json"
        code = main(
            [
                "resolve",
                str(dataset_dir / "kb1.nt"),
                str(dataset_dir / "kb2.nt"),
                "--trace",
                str(trace),
            ]
        )
        assert code == 0
        payload = json.loads(trace.read_text())
        names = {span["name"] for span in payload["spans"]}
        assert {"resolve", "statistics", "blocking", "graph", "matching"} <= names
        assert any(
            key.startswith("kernels.dispatch.") for key in payload["counters"]
        )
        assert "# trace written to" in capsys.readouterr().err

    def test_resolve_trace_logfmt(self, dataset_dir, capsys):
        trace = dataset_dir / "trace.logfmt"
        code = main(
            [
                "resolve",
                str(dataset_dir / "kb1.nt"),
                str(dataset_dir / "kb2.nt"),
                "--trace",
                str(trace),
                "--trace-format",
                "logfmt",
            ]
        )
        assert code == 0
        lines = trace.read_text().strip().splitlines()
        assert any(line.startswith("span name=resolve") for line in lines)

    def test_index_and_serve_trace(self, dataset_dir, capsys):
        index_path = dataset_dir / "kb2.idx"
        index_trace = dataset_dir / "index-trace.json"
        assert main(
            [
                "index",
                str(dataset_dir / "kb2.nt"),
                "-o",
                str(index_path),
                "--trace",
                str(index_trace),
            ]
        ) == 0
        capsys.readouterr()
        names = {s["name"] for s in json.loads(index_trace.read_text())["spans"]}
        assert {"index.build", "index.statistics", "index.save"} <= names

        requests = dataset_dir / "queries.jsonl"
        requests.write_text('{"pairs": [["name", "anything"]]}\n', encoding="utf-8")
        serve_trace = dataset_dir / "serve-trace.json"
        assert main(
            [
                "serve",
                str(index_path),
                "-i",
                str(requests),
                "--trace",
                str(serve_trace),
            ]
        ) == 0
        capsys.readouterr()
        payload = json.loads(serve_trace.read_text())
        assert "index.load" in {s["name"] for s in payload["spans"]}
        assert payload["counters"]["serving.queries"] == 1
        assert "serving.latency_ms" in payload["histograms"]
        assert "serving.candidates" in payload["histograms"]


class TestDedupeCommand:
    def test_dedupe_runs(self, dataset_dir, capsys):
        code = main(["dedupe", str(dataset_dir / "kb2.nt")])
        assert code == 0
        assert "clusters" in capsys.readouterr().err


class TestExperimentCommand:
    def test_experiment_table1_on_stub_profiles(self, mini_pair, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(cli, "load_profile", lambda name: mini_pair)
        code = main(["experiment", "table1", "--profiles", "restaurant"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "mini" in out

    def test_experiment_table4_on_stub_profiles(self, mini_pair, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(cli, "load_profile", lambda name: mini_pair)
        code = main(["experiment", "table4", "--profiles", "restaurant"])
        assert code == 0
        assert "[R1]" in capsys.readouterr().out

    def test_experiment_figure6_on_stub_profiles(self, mini_pair, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(cli, "load_profile", lambda name: mini_pair)
        code = main(["experiment", "figure6", "--profiles", "restaurant"])
        assert code == 0
        assert "speedup" in capsys.readouterr().out


class TestGenerateCommand:
    def test_generate_writes_triple_of_files(self, tmp_path, capsys):
        code = main(
            [
                "generate",
                "restaurant",
                "--scale",
                "0.1",
                "--out-dir",
                str(tmp_path / "data"),
            ]
        )
        assert code == 0
        assert (tmp_path / "data" / "kb1.nt").exists()
        assert (tmp_path / "data" / "kb2.nt").exists()
        assert (tmp_path / "data" / "ground_truth.tsv").exists()

    def test_generated_data_resolves(self, tmp_path, capsys):
        main(["generate", "restaurant", "--scale", "0.1", "--out-dir", str(tmp_path)])
        code = main(
            [
                "resolve",
                str(tmp_path / "kb1.nt"),
                str(tmp_path / "kb2.nt"),
                "--ground-truth",
                str(tmp_path / "ground_truth.tsv"),
            ]
        )
        assert code == 0
