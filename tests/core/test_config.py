"""Unit tests for MinoanERConfig validation and defaults."""

import pytest

from repro.core.config import PAPER_DEFAULT, MinoanERConfig


class TestDefaults:
    def test_paper_configuration(self):
        config = MinoanERConfig()
        assert (config.name_attributes_k, config.candidates_k) == (2, 15)
        assert (config.relations_n, config.theta) == (3, 0.6)

    def test_paper_default_constant(self):
        assert PAPER_DEFAULT == MinoanERConfig()

    def test_all_rules_enabled_by_default(self):
        config = MinoanERConfig()
        assert config.use_name_rule
        assert config.use_value_rule
        assert config.use_rank_aggregation
        assert config.use_reciprocity
        assert config.use_neighbor_evidence

    def test_frozen(self):
        with pytest.raises(AttributeError):
            MinoanERConfig().theta = 0.5  # type: ignore[misc]


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("name_attributes_k", -1),
            ("candidates_k", 0),
            ("relations_n", -2),
            ("theta", 0.0),
            ("theta", 1.0),
            ("theta", 1.5),
            ("value_threshold", -0.1),
            ("purging_budget_ratio", 0.0),
        ],
    )
    def test_rejects_invalid(self, field, value):
        with pytest.raises(ValueError):
            MinoanERConfig(**{field: value})

    def test_with_options_revalidates(self):
        with pytest.raises(ValueError):
            MinoanERConfig().with_options(theta=2.0)

    def test_with_options_changes_only_given_fields(self):
        changed = MinoanERConfig().with_options(candidates_k=5)
        assert changed.candidates_k == 5
        assert changed.theta == 0.6
