"""Property-based tests of the matcher over random pruned graphs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MinoanERConfig
from repro.core.matcher import NonIterativeMatcher
from repro.graph.blocking_graph import DisjunctiveBlockingGraph


@st.composite
def random_graph(draw):
    n1 = draw(st.integers(1, 6))
    n2 = draw(st.integers(1, 6))

    def candidate_lists(n, other_n, max_k=3):
        lists = []
        for _ in range(n):
            size = draw(st.integers(0, min(max_k, other_n)))
            others = draw(
                st.lists(
                    st.integers(0, other_n - 1), min_size=size, max_size=size, unique=True
                )
            )
            weights = sorted(
                (draw(st.floats(0.05, 5.0, allow_nan=False)) for _ in others),
                reverse=True,
            )
            lists.append(tuple(zip(others, weights)))
        return lists

    names_1: dict[int, int] = {}
    names_2: dict[int, int] = {}
    if draw(st.booleans()) and n1 and n2:
        eid1 = draw(st.integers(0, n1 - 1))
        eid2 = draw(st.integers(0, n2 - 1))
        names_1[eid1] = eid2
        names_2[eid2] = eid1

    return DisjunctiveBlockingGraph(
        n1=n1,
        n2=n2,
        name_matches_1=names_1,
        name_matches_2=names_2,
        value_candidates_1=candidate_lists(n1, n2),
        value_candidates_2=candidate_lists(n2, n1),
        neighbor_candidates_1=candidate_lists(n1, n2),
        neighbor_candidates_2=candidate_lists(n2, n1),
    )


class TestMatcherProperties:
    @given(graph=random_graph())
    @settings(max_examples=120)
    def test_matches_are_graph_pairs(self, graph):
        result = NonIterativeMatcher(MinoanERConfig()).match(graph)
        pairs = graph.undirected_pairs()
        assert result.matches <= pairs

    @given(graph=random_graph())
    @settings(max_examples=120)
    def test_unique_mapping_holds(self, graph):
        result = NonIterativeMatcher(MinoanERConfig()).match(graph)
        lefts = [a for a, _ in result.matches]
        rights = [b for _, b in result.matches]
        assert len(lefts) == len(set(lefts))
        assert len(rights) == len(set(rights))

    @given(graph=random_graph())
    @settings(max_examples=120)
    def test_reciprocity_filter_only_removes(self, graph):
        with_r4 = NonIterativeMatcher(MinoanERConfig()).match(graph)
        proposed = {pair for pair, _ in with_r4.proposed}
        assert with_r4.matches <= proposed
        assert with_r4.removed_by_reciprocity <= proposed
        assert not with_r4.matches & with_r4.removed_by_reciprocity

    @given(graph=random_graph())
    @settings(max_examples=120)
    def test_deterministic(self, graph):
        first = NonIterativeMatcher(MinoanERConfig()).match(graph)
        second = NonIterativeMatcher(MinoanERConfig()).match(graph)
        assert first.matches == second.matches
        assert first.rule_of == second.rule_of

    @given(graph=random_graph())
    @settings(max_examples=120)
    def test_every_match_attributed_and_scored(self, graph):
        result = NonIterativeMatcher(MinoanERConfig()).match(graph)
        for pair in result.matches:
            assert result.rule_of[pair] in {"R1", "R2", "R3"}
            assert result.scores[pair] > 0.0

    @given(graph=random_graph())
    @settings(max_examples=120)
    def test_name_matches_always_survive(self, graph):
        """Alpha edges are reciprocal by construction and outrank all
        conflicts, so R1 pairs always reach the final match set."""
        result = NonIterativeMatcher(MinoanERConfig()).match(graph)
        for eid1 in range(graph.n1):
            eid2 = graph.name_match(1, eid1)
            if eid2 is not None and graph.name_match(2, eid2) == eid1:
                assert (eid1, eid2) in result.matches