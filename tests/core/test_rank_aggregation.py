"""Unit tests for the threshold-free rank aggregation of rule R3."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rank_aggregation import (
    aggregate_rankings,
    normalized_rank_scores,
    top_aggregate_candidate,
)


class TestNormalizedRanks:
    def test_first_gets_one_last_gets_one_over_n(self):
        scores = normalized_rank_scores(((7, 9.0), (3, 5.0), (1, 2.0)))
        assert scores == {7: 1.0, 3: pytest.approx(2 / 3), 1: pytest.approx(1 / 3)}

    def test_single_candidate(self):
        assert normalized_rank_scores(((4, 0.5),)) == {4: 1.0}

    def test_empty(self):
        assert normalized_rank_scores(()) == {}


class TestAggregateRankings:
    def test_weighted_combination(self):
        value = ((1, 5.0), (2, 1.0))
        neighbor = ((2, 9.0),)
        aggregate = aggregate_rankings(value, neighbor, theta=0.6)
        assert aggregate[1] == pytest.approx(0.6 * 1.0)
        assert aggregate[2] == pytest.approx(0.6 * 0.5 + 0.4 * 1.0)

    def test_theta_one_sided(self):
        value = ((1, 5.0),)
        neighbor = ((2, 9.0),)
        high_theta = aggregate_rankings(value, neighbor, theta=0.9)
        assert high_theta[1] > high_theta[2]
        low_theta = aggregate_rankings(value, neighbor, theta=0.1)
        assert low_theta[2] > low_theta[1]

    def test_empty_lists(self):
        assert aggregate_rankings((), (), 0.5) == {}


class TestTopAggregate:
    def test_neighbor_evidence_flips_decision(self):
        """A nearly similar match wins through its neighbor ranking."""
        value = ((99, 0.8), (1, 0.7))  # wrong candidate slightly ahead on values
        neighbor = ((1, 5.0), (2, 1.0))  # true candidate dominates neighbors
        best = top_aggregate_candidate(value, neighbor, theta=0.6)
        assert best is not None
        assert best[0] == 1

    def test_none_when_no_candidates(self):
        assert top_aggregate_candidate((), (), 0.6) is None

    def test_tie_breaks_on_id(self):
        value = ((5, 1.0),)
        neighbor = ((3, 1.0),)
        best = top_aggregate_candidate(value, neighbor, theta=0.5)
        assert best == (3, 0.5)


candidate_list = st.lists(
    st.tuples(st.integers(0, 20), st.floats(0.1, 10.0, allow_nan=False)),
    max_size=8,
    unique_by=lambda item: item[0],
).map(lambda items: tuple(sorted(items, key=lambda i: (-i[1], i[0]))))


class TestProperties:
    @given(value=candidate_list, neighbor=candidate_list, theta=st.floats(0.1, 0.9))
    @settings(max_examples=80)
    def test_aggregate_bounded_by_one(self, value, neighbor, theta):
        for score in aggregate_rankings(value, neighbor, theta).values():
            assert 0.0 < score <= 1.0 + 1e-12

    @given(value=candidate_list, neighbor=candidate_list, theta=st.floats(0.1, 0.9))
    @settings(max_examples=80)
    def test_top_candidate_has_max_score(self, value, neighbor, theta):
        aggregate = aggregate_rankings(value, neighbor, theta)
        best = top_aggregate_candidate(value, neighbor, theta)
        if aggregate:
            assert best is not None
            assert best[1] == pytest.approx(max(aggregate.values()))
        else:
            assert best is None
