"""Tests for the ensemble matcher (future-work extension)."""

import pytest

from repro.core.config import MinoanERConfig
from repro.core.ensemble import EnsembleConfig, EnsembleMatcher
from repro.core.pipeline import MinoanER
from repro.graph.blocking_graph import DisjunctiveBlockingGraph


def graph(**kwargs) -> DisjunctiveBlockingGraph:
    n1 = kwargs.pop("n1", 2)
    n2 = kwargs.pop("n2", 2)
    return DisjunctiveBlockingGraph(
        n1=n1,
        n2=n2,
        name_matches_1=kwargs.pop("names_1", {}),
        name_matches_2=kwargs.pop("names_2", {}),
        value_candidates_1=kwargs.pop("value_1", [()] * n1),
        value_candidates_2=kwargs.pop("value_2", [()] * n2),
        neighbor_candidates_1=kwargs.pop("neighbor_1", [()] * n1),
        neighbor_candidates_2=kwargs.pop("neighbor_2", [()] * n2),
    )


class TestConfig:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            EnsembleConfig(name_weight=-1.0)

    def test_discount_bounds(self):
        with pytest.raises(ValueError):
            EnsembleConfig(reciprocity_discount=1.5)


class TestVotes:
    def test_name_vote_decisive(self):
        g = graph(names_1={0: 0}, names_2={0: 0})
        result = EnsembleMatcher().match(g)
        assert (0, 0) in result.matches
        assert result.confidences[(0, 0)] >= 2.0

    def test_bidirectional_rank_votes(self):
        g = graph(
            value_1=[((0, 3.0),), ()],
            value_2=[((0, 3.0),), ()],
        )
        scores = EnsembleMatcher().score_pairs(g)
        # top-1 in both directions: 0.5 + 0.5 of the value weight
        assert scores[(0, 0)] == pytest.approx(1.0)

    def test_non_reciprocal_discounted(self):
        one_way = graph(value_1=[((0, 3.0),), ()], value_2=[(), ()])
        scores = EnsembleMatcher().score_pairs(one_way)
        assert scores[(0, 0)] == pytest.approx(0.5 * 0.5)

    def test_consistent_runner_up_beats_split_leaders(self):
        """The motivating case: candidate 1 is second by value and second
        by neighbors, but the value leader (2) and neighbor leader (3)
        are different wrong candidates -- the ensemble prefers 1."""
        g = graph(
            n1=1,
            n2=4,
            value_1=[((2, 5.0), (1, 4.0))],
            neighbor_1=[((3, 5.0), (1, 4.0))],
            value_2=[(), ((0, 4.0),), ((0, 5.0),), ()],
            neighbor_2=[(), ((0, 4.0),), (), ((0, 5.0),)],
        )
        scores = EnsembleMatcher().score_pairs(g)
        assert scores[(0, 1)] > scores[(0, 2)]
        assert scores[(0, 1)] > scores[(0, 3)]

    def test_threshold_gates_matches(self):
        g = graph(value_1=[((0, 0.1),), ()], value_2=[((0, 0.1),), ()])
        strict = EnsembleMatcher(EnsembleConfig(threshold=2.0)).match(g)
        assert strict.matches == set()


class TestEnsembleOnData:
    def test_competitive_with_standard_matcher(self, mini_pair):
        pipeline = MinoanER()
        standard = pipeline.resolve(mini_pair.kb1, mini_pair.kb2)
        ensemble = EnsembleMatcher().match(standard.graph)
        gt = mini_pair.ground_truth
        from repro.evaluation.metrics import evaluate_matches

        standard_f1 = standard.evaluate(gt).f1
        ensemble_f1 = evaluate_matches(ensemble.matches, gt).f1
        assert ensemble_f1 > standard_f1 - 0.1

    def test_one_to_one_output(self, hard_pair):
        result = MinoanER().resolve(hard_pair.kb1, hard_pair.kb2)
        ensemble = EnsembleMatcher().match(result.graph)
        lefts = [a for a, _ in ensemble.matches]
        rights = [b for _, b in ensemble.matches]
        assert len(lefts) == len(set(lefts))
        assert len(rights) == len(set(rights))
