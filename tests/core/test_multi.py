"""Tests for multi-KB resolution (k-partite generalisation)."""

import pytest

from repro.core.multi import MultiKBResolver
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase


def kb_variant(prefix: str, decorator: str) -> KnowledgeBase:
    """One KB describing the same 3 world entities, in its own dialect."""
    return KnowledgeBase(
        [
            EntityDescription(
                f"{prefix}:duck",
                [("name", f"fat duck bray {decorator}")],
            ),
            EntityDescription(
                f"{prefix}:laundry",
                [("name", f"french laundry yountville {decorator}")],
            ),
            EntityDescription(
                f"{prefix}:noma",
                [("name", f"noma copenhagen {decorator}")],
            ),
        ],
        name=prefix,
    )


@pytest.fixture
def three_kbs():
    return [kb_variant("a", "alpha"), kb_variant("b", "beta"), kb_variant("c", "gamma")]


class TestMultiResolution:
    def test_requires_two_kbs(self):
        with pytest.raises(ValueError):
            MultiKBResolver().resolve([KnowledgeBase([], "only")])

    def test_all_pairs_resolved(self, three_kbs):
        result = MultiKBResolver().resolve(three_kbs)
        assert set(result.pairwise) == {(0, 1), (0, 2), (1, 2)}

    def test_clusters_span_all_kbs(self, three_kbs):
        result = MultiKBResolver().resolve(three_kbs)
        full_clusters = [c for c in result.clusters if len(c) == 3]
        assert len(full_clusters) == 3
        uris = result.cluster_uris()
        assert ("a:duck", "b:duck", "c:duck") in uris

    def test_clusters_have_one_entity_per_kb(self, three_kbs):
        result = MultiKBResolver().resolve(three_kbs)
        for cluster in result.clusters:
            kb_indexes = [kb_index for kb_index, _ in cluster]
            assert len(kb_indexes) == len(set(kb_indexes))

    def test_matches_between_symmetric(self, three_kbs):
        result = MultiKBResolver().resolve(three_kbs)
        forward = result.matches_between(0, 1)
        backward = result.matches_between(1, 0)
        assert forward == {(a, b) for b, a in backward}

    def test_conflicting_evidence_reported_not_merged(self):
        """If transitive matches would put two same-KB entities in one
        cluster, the cluster lands in ``conflicts``."""
        kb_a = KnowledgeBase(
            [
                EntityDescription("a:x1", [("n", "widget mark one")]),
                EntityDescription("a:x2", [("n", "widget mark two")]),
            ],
            name="a",
        )
        kb_b = KnowledgeBase(
            [EntityDescription("b:x", [("n", "widget mark one")])], name="b"
        )
        kb_c = KnowledgeBase(
            [EntityDescription("c:x", [("n", "widget mark two")])], name="c"
        )
        result = MultiKBResolver().resolve([kb_a, kb_b, kb_c])
        # b:x matches a:x1, c:x matches a:x2; if b:x also matches c:x the
        # closure would join a:x1 and a:x2 -> must be surfaced as conflict.
        for cluster in result.clusters:
            kb_indexes = [kb_index for kb_index, _ in cluster]
            assert len(kb_indexes) == len(set(kb_indexes))
        total = len(result.clusters) + len(result.conflicts)
        assert total >= 1
