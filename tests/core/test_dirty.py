"""Tests for dirty ER (single-KB deduplication)."""

import pytest

from repro.core.config import MinoanERConfig
from repro.core.dirty import DirtyMinoanER, _connected_components, _ordered
from repro.evaluation.metrics import evaluate_matches
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase


@pytest.fixture
def dirty_kb() -> KnowledgeBase:
    """Three duplicate groups plus singletons, in one KB."""
    return KnowledgeBase(
        [
            EntityDescription("dup1a", [("name", "fat duck bray berkshire")]),
            EntityDescription("dup1b", [("label", "the fat duck bray berkshire")]),
            EntityDescription("dup2a", [("name", "french laundry yountville")]),
            EntityDescription("dup2b", [("label", "french laundry restaurant yountville")]),
            EntityDescription("single1", [("name", "noma copenhagen")]),
            EntityDescription("single2", [("name", "el bulli roses")]),
        ],
        name="dirty",
    )


class TestHelpers:
    def test_ordered(self):
        assert _ordered(3, 1) == (1, 3)
        assert _ordered(1, 3) == (1, 3)

    def test_connected_components(self):
        clusters = _connected_components({(0, 1), (1, 2), (4, 5)}, 6)
        assert clusters == [(0, 1, 2), (4, 5)]

    def test_connected_components_ignores_singletons(self):
        assert _connected_components(set(), 3) == []


class TestDirtyResolution:
    def test_finds_duplicate_pairs(self, dirty_kb):
        result = DirtyMinoanER().resolve(dirty_kb)
        uris = result.uri_matches()
        assert ("dup1a", "dup1b") in uris
        assert ("dup2a", "dup2b") in uris

    def test_singletons_not_clustered(self, dirty_kb):
        result = DirtyMinoanER().resolve(dirty_kb)
        clustered = {eid for cluster in result.clusters for eid in cluster}
        assert dirty_kb.id_of("single1") not in clustered
        assert dirty_kb.id_of("single2") not in clustered

    def test_clusters_transitively_closed(self):
        kb = KnowledgeBase(
            [
                EntityDescription("a", [("n", "alpha beta gamma delta")]),
                EntityDescription("b", [("n", "alpha beta gamma epsilon")]),
                EntityDescription("c", [("n", "beta gamma delta epsilon")]),
            ]
        )
        result = DirtyMinoanER().resolve(kb)
        if len(result.matches) >= 2:
            assert result.clusters == [(0, 1, 2)]

    def test_rule_attribution_present(self, dirty_kb):
        result = DirtyMinoanER().resolve(dirty_kb)
        for pair in result.matches:
            assert result.rule_of[pair] in {"R1", "R2", "R3"}

    def test_pairs_are_ordered(self, dirty_kb):
        result = DirtyMinoanER().resolve(dirty_kb)
        for eid1, eid2 in result.matches:
            assert eid1 < eid2

    def test_empty_kb(self):
        result = DirtyMinoanER().resolve(KnowledgeBase([]))
        assert result.matches == set()
        assert result.clusters == []

    def test_cluster_uris(self, dirty_kb):
        result = DirtyMinoanER().resolve(dirty_kb)
        for cluster in result.cluster_uris():
            assert all(isinstance(uri, str) for uri in cluster)


class TestDirtyQuality:
    def test_merged_clean_pair_recovers_matches(self, mini_pair):
        """Concatenating a clean-clean task into one KB makes a dirty-ER
        task whose gold duplicates are the original matches."""
        merged = KnowledgeBase(
            list(mini_pair.kb1.entities) + list(mini_pair.kb2.entities),
            name="merged",
        )
        offset = len(mini_pair.kb1)
        gold = {(a, b + offset) for a, b in mini_pair.ground_truth}
        result = DirtyMinoanER().resolve(merged)
        report = evaluate_matches(result.matches, gold)
        assert report.f1 > 0.75

    def test_ablation_toggles_apply(self, dirty_kb):
        config = MinoanERConfig(
            use_name_rule=False, use_value_rule=False, use_rank_aggregation=False
        )
        result = DirtyMinoanER(config).resolve(dirty_kb)
        assert result.matches == set()
