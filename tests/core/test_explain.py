"""Tests for the match-explanation API."""

import pytest

from repro.core.explain import explain_pair
from repro.core.pipeline import MinoanER


@pytest.fixture
def resolved(restaurant_kbs):
    kb1, kb2 = restaurant_kbs
    return MinoanER().resolve(kb1, kb2)


class TestExplainPair:
    def test_explains_name_match(self, resolved):
        kb1, kb2 = resolved.kb1, resolved.kb2
        explanation = explain_pair(
            resolved, kb1.id_of("wd:JohnLakeA"), kb2.id_of("db:JonnyLake")
        )
        assert explanation.matched
        assert explanation.rule == "R1"
        assert "j. lake" in explanation.shared_names
        assert explanation.exclusive_name

    def test_explains_value_match(self, resolved):
        kb1, kb2 = resolved.kb1, resolved.kb2
        explanation = explain_pair(
            resolved, kb1.id_of("wd:Restaurant1"), kb2.id_of("db:Restaurant2")
        )
        assert explanation.matched
        tokens = dict(explanation.shared_tokens)
        assert "fat" in tokens and "duck" in tokens
        assert explanation.beta > 0

    def test_neighbor_contributions_listed(self, resolved):
        kb1, kb2 = resolved.kb1, resolved.kb2
        explanation = explain_pair(
            resolved, kb1.id_of("wd:Restaurant1"), kb2.id_of("db:Restaurant2")
        )
        uris = {(a, b) for a, b, _ in explanation.neighbor_contributions}
        assert ("wd:JohnLakeA", "db:JonnyLake") in uris

    def test_explains_non_match(self, resolved):
        kb1, kb2 = resolved.kb1, resolved.kb2
        explanation = explain_pair(
            resolved, kb1.id_of("wd:UK"), kb2.id_of("db:JonnyLake")
        )
        assert not explanation.matched
        assert explanation.rule is None
        assert explanation.shared_tokens == ()

    def test_render_is_readable(self, resolved):
        kb1, kb2 = resolved.kb1, resolved.kb2
        text = explain_pair(
            resolved, kb1.id_of("wd:Restaurant1"), kb2.id_of("db:Restaurant2")
        ).render()
        assert "MATCH" in text
        assert "value similarity" in text
        assert "reciprocal" in text

    def test_render_non_match(self, resolved):
        kb1, kb2 = resolved.kb1, resolved.kb2
        text = explain_pair(
            resolved, kb1.id_of("wd:UK"), kb2.id_of("db:JonnyLake")
        ).render()
        assert "no match" in text
        assert "no shared tokens" in text

    def test_accepts_prebuilt_statistics(self, resolved):
        pipeline = MinoanER()
        stats1 = pipeline.build_statistics(resolved.kb1)
        stats2 = pipeline.build_statistics(resolved.kb2)
        explanation = explain_pair(resolved, 0, 0, stats1, stats2)
        assert explanation.uri1 == resolved.kb1.uri_of(0)
