"""Unit tests for the non-iterative matcher (Algorithm 2)."""

import pytest

from repro.core.config import MinoanERConfig
from repro.core.matcher import NonIterativeMatcher
from repro.graph.blocking_graph import DisjunctiveBlockingGraph


def graph(**kwargs) -> DisjunctiveBlockingGraph:
    n1 = kwargs.pop("n1", 2)
    n2 = kwargs.pop("n2", 2)
    return DisjunctiveBlockingGraph(
        n1=n1,
        n2=n2,
        name_matches_1=kwargs.pop("names_1", {}),
        name_matches_2=kwargs.pop("names_2", {}),
        value_candidates_1=kwargs.pop("value_1", [()] * n1),
        value_candidates_2=kwargs.pop("value_2", [()] * n2),
        neighbor_candidates_1=kwargs.pop("neighbor_1", [()] * n1),
        neighbor_candidates_2=kwargs.pop("neighbor_2", [()] * n2),
    )


@pytest.fixture
def layered_graph() -> DisjunctiveBlockingGraph:
    """3x3: a0-b0 by name; a1-b1 by strong value; a2-b2 by neighbors."""
    return graph(
        n1=3,
        n2=3,
        names_1={0: 0},
        names_2={0: 0},
        value_1=[((0, 0.2),), ((1, 2.5), (2, 0.5)), ((2, 0.3),)],
        value_2=[((0, 0.2),), ((1, 2.5),), ((2, 0.3), (1, 0.2))],
        neighbor_1=[(), (), ((2, 4.0),)],
        neighbor_2=[(), (), ((2, 4.0),)],
    )


class TestRuleComposition:
    def test_each_rule_contributes(self, layered_graph):
        result = NonIterativeMatcher(MinoanERConfig()).match(layered_graph)
        assert result.matches == {(0, 0), (1, 1), (2, 2)}
        assert result.rule_of[(0, 0)] == "R1"
        assert result.rule_of[(1, 1)] == "R2"
        assert result.rule_of[(2, 2)] == "R3"

    def test_rule_scores_recorded(self, layered_graph):
        result = NonIterativeMatcher(MinoanERConfig()).match(layered_graph)
        assert result.scores[(0, 0)] == float("inf")
        assert result.scores[(1, 1)] == pytest.approx(2.5)
        assert 0 < result.scores[(2, 2)] <= 1.0

    def test_matches_by_rule(self, layered_graph):
        result = NonIterativeMatcher(MinoanERConfig()).match(layered_graph)
        assert result.matches_by_rule("R1") == {(0, 0)}
        assert result.matches_by_rule("R2") == {(1, 1)}


class TestAblationToggles:
    def test_name_rule_disabled(self, layered_graph):
        config = MinoanERConfig(use_name_rule=False)
        result = NonIterativeMatcher(config).match(layered_graph)
        assert not result.matches_by_rule("R1")
        # a0 falls through to R3 via its weak value candidate.
        assert (0, 0) in result.matches

    def test_only_name_rule(self, layered_graph):
        config = MinoanERConfig(use_value_rule=False, use_rank_aggregation=False)
        result = NonIterativeMatcher(config).match(layered_graph)
        assert result.matches == {(0, 0)}

    def test_reciprocity_filters(self):
        # a0 keeps b0, but b0 kept nothing: non-reciprocal R2 match.
        g = graph(value_1=[((0, 1.5),), ()], value_2=[(), ()])
        with_r4 = NonIterativeMatcher(MinoanERConfig()).match(g)
        without_r4 = NonIterativeMatcher(MinoanERConfig(use_reciprocity=False)).match(g)
        assert with_r4.matches == set()
        assert with_r4.removed_by_reciprocity == {(0, 0)}
        assert without_r4.matches == {(0, 0)}

    def test_neighbor_evidence_toggle(self):
        g = graph(
            value_1=[((0, 0.6), (1, 0.5)), ()],
            value_2=[((0, 0.6),), ((0, 0.5),)],
            neighbor_1=[((1, 9.0),), ()],
            neighbor_2=[(), ((0, 9.0),)],
        )
        with_neighbors = NonIterativeMatcher(MinoanERConfig(theta=0.4)).match(g)
        without = NonIterativeMatcher(
            MinoanERConfig(theta=0.4, use_neighbor_evidence=False)
        ).match(g)
        assert (0, 1) in with_neighbors.matches
        assert (0, 0) in without.matches


class TestConflictResolution:
    def test_unique_mapping_keeps_higher_priority_rule(self):
        # R1 matches (a0, b0); a1's best value candidate is also b0.
        g = graph(
            names_1={0: 0},
            names_2={0: 0},
            value_1=[(), ((0, 5.0),)],
            value_2=[((1, 5.0), (0, 1.0)), ()],
        )
        result = NonIterativeMatcher(MinoanERConfig()).match(g)
        assert (0, 0) in result.matches
        assert (1, 0) not in result.matches

    def test_unique_mapping_output_is_one_to_one(self, layered_graph):
        result = NonIterativeMatcher(MinoanERConfig()).match(layered_graph)
        lefts = [a for a, _ in result.matches]
        rights = [b for _, b in result.matches]
        assert len(lefts) == len(set(lefts))
        assert len(rights) == len(set(rights))

    def test_conflicts_kept_when_unique_mapping_disabled(self):
        g = graph(
            names_1={0: 0},
            names_2={0: 0},
            value_1=[(), ((0, 5.0),)],
            value_2=[((1, 5.0), (0, 1.0)), ()],
        )
        config = MinoanERConfig(enforce_unique_mapping=False)
        result = NonIterativeMatcher(config).match(g)
        assert {(0, 0), (1, 0)} <= result.matches

    def test_proposed_includes_filtered_pairs(self):
        g = graph(value_1=[((0, 1.5),), ()], value_2=[(), ()])
        result = NonIterativeMatcher(MinoanERConfig()).match(g)
        assert ((0, 0), "R2") in result.proposed
