"""Unit and integration tests for the end-to-end MinoanER pipeline."""

import pytest

from repro.core.config import MinoanERConfig
from repro.core.pipeline import MinoanER
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase


class TestResolveOnFigure1(object):
    def test_finds_all_figure1_matches(self, restaurant_kbs):
        kb1, kb2 = restaurant_kbs
        result = MinoanER(MinoanERConfig(candidates_k=5)).resolve(kb1, kb2)
        matches = result.uri_matches()
        assert ("wd:JohnLakeA", "db:JonnyLake") in matches  # R1 (name "J. Lake")
        assert ("wd:Restaurant1", "db:Restaurant2") in matches
        assert ("wd:Bray", "db:Berkshire") in matches

    def test_evaluation(self, restaurant_kbs):
        kb1, kb2 = restaurant_kbs
        result = MinoanER().resolve(kb1, kb2)
        gt = {
            (kb1.id_of("wd:Restaurant1"), kb2.id_of("db:Restaurant2")),
            (kb1.id_of("wd:JohnLakeA"), kb2.id_of("db:JonnyLake")),
        }
        report = result.evaluate(gt)
        assert report.recall == 1.0

    def test_timings_recorded(self, restaurant_kbs):
        result = MinoanER().resolve(*restaurant_kbs)
        assert set(result.timings) == {"statistics", "blocking", "graph", "matching", "total"}
        assert result.timings["total"] >= 0

    def test_timings_complete_even_when_assembled_by_hand(self, restaurant_kbs):
        # Regression: a ResolutionResult built with partial (or no)
        # timings must still expose every documented phase key.
        from repro.core.pipeline import TIMING_PHASES, ResolutionResult

        reference = MinoanER().resolve(*restaurant_kbs)
        partial = ResolutionResult(
            kb1=reference.kb1,
            kb2=reference.kb2,
            matching=reference.matching,
            graph=reference.graph,
            name_block_collection=reference.name_block_collection,
            token_block_collection=reference.token_block_collection,
            timings={"matching": 0.25},
        )
        assert set(partial.timings) == set(TIMING_PHASES)
        assert partial.timings["matching"] == 0.25
        assert partial.timings["blocking"] == 0.0

        bare = ResolutionResult(
            kb1=reference.kb1,
            kb2=reference.kb2,
            matching=reference.matching,
            graph=reference.graph,
            name_block_collection=reference.name_block_collection,
            token_block_collection=reference.token_block_collection,
        )
        assert set(bare.timings) == set(TIMING_PHASES)
        assert all(value == 0.0 for value in bare.timings.values())


class TestTracing:
    def test_spans_cover_every_timing_phase(self, restaurant_kbs):
        from repro.core.pipeline import TIMING_PHASES
        from repro.obs import Recorder, use_recorder

        recorder = Recorder()
        with use_recorder(recorder):
            result = MinoanER().resolve(*restaurant_kbs)
        names = recorder.span_names()
        # "total" is the root "resolve" span; the other phases appear
        # under their own names.
        for phase in TIMING_PHASES:
            assert ("resolve" if phase == "total" else phase) in names
        # timings is a derived view of the recorded spans.
        root = next(s for s in recorder.spans() if s.name == "resolve")
        assert result.timings["total"] == root.seconds
        for phase in ("statistics", "blocking", "graph", "matching"):
            span = next(s for s in recorder.spans() if s.name == phase)
            assert result.timings[phase] == span.seconds
            assert span.parent_id == root.span_id
        assert recorder.counters().get("kernels.dispatch.numpy", 0) or (
            recorder.counters().get("kernels.dispatch.python", 0)
        )

    def test_observability_knob_disables_recording(self, restaurant_kbs):
        from repro.obs import Recorder, use_recorder

        recorder = Recorder()
        with use_recorder(recorder):
            result = MinoanER(MinoanERConfig(observability=False)).resolve(
                *restaurant_kbs
            )
        assert recorder.spans() == []
        # Timings stay populated even with tracing off.
        assert result.timings["total"] > 0.0

    def test_explicit_recorder_wins_over_ambient(self, restaurant_kbs):
        from repro.obs import Recorder, use_recorder

        explicit = Recorder()
        ambient = Recorder()
        with use_recorder(ambient):
            MinoanER(recorder=explicit).resolve(*restaurant_kbs)
        assert "resolve" in explicit.span_names()
        assert ambient.spans() == []

    def test_tracing_does_not_change_matches(self, restaurant_kbs):
        from repro.obs import Recorder, use_recorder

        baseline = MinoanER().resolve(*restaurant_kbs).uri_matches()
        with use_recorder(Recorder()):
            traced = MinoanER().resolve(*restaurant_kbs).uri_matches()
        assert traced == baseline


class TestResolveOnSynthetic:
    def test_quality_floor_on_easy_pair(self, mini_pair):
        result = MinoanER().resolve(mini_pair.kb1, mini_pair.kb2)
        report = result.evaluate(mini_pair.ground_truth)
        assert report.f1 > 0.85

    def test_quality_floor_on_hard_pair(self, hard_pair):
        result = MinoanER().resolve(hard_pair.kb1, hard_pair.kb2)
        report = result.evaluate(hard_pair.ground_truth)
        assert report.f1 > 0.6

    def test_neighbor_evidence_helps_on_hard_pair(self, hard_pair):
        full = MinoanER().resolve(hard_pair.kb1, hard_pair.kb2)
        blind = MinoanER(MinoanERConfig(use_neighbor_evidence=False)).resolve(
            hard_pair.kb1, hard_pair.kb2
        )
        gt = hard_pair.ground_truth
        assert full.evaluate(gt).f1 >= blind.evaluate(gt).f1

    def test_deterministic(self, mini_pair):
        first = MinoanER().resolve(mini_pair.kb1, mini_pair.kb2)
        second = MinoanER().resolve(mini_pair.kb1, mini_pair.kb2)
        assert first.matches == second.matches

    def test_purging_disabled_still_works(self, mini_pair):
        config = MinoanERConfig(purge_blocks=False)
        result = MinoanER(config).resolve(mini_pair.kb1, mini_pair.kb2)
        assert result.evaluate(mini_pair.ground_truth).recall > 0.8

    def test_partial_vs_complete_gold(self, mini_pair):
        result = MinoanER().resolve(mini_pair.kb1, mini_pair.kb2)
        partial = result.evaluate(mini_pair.ground_truth, partial_gold=True)
        complete = result.evaluate(mini_pair.ground_truth, partial_gold=False)
        assert partial.precision >= complete.precision
        assert partial.recall == complete.recall


class TestEdgeCases:
    def test_single_entity_kbs(self):
        kb1 = KnowledgeBase([EntityDescription("a", [("l", "fat duck bray")])], "k1")
        kb2 = KnowledgeBase([EntityDescription("b", [("n", "fat duck bray")])], "k2")
        result = MinoanER().resolve(kb1, kb2)
        assert result.uri_matches() == {("a", "b")}

    def test_disjoint_kbs_produce_no_matches(self):
        kb1 = KnowledgeBase([EntityDescription("a", [("l", "alpha beta")])], "k1")
        kb2 = KnowledgeBase([EntityDescription("b", [("n", "gamma delta")])], "k2")
        result = MinoanER().resolve(kb1, kb2)
        assert result.matches == set()

    def test_entities_without_literals(self):
        kb1 = KnowledgeBase(
            [EntityDescription("a", [("r", "b")]), EntityDescription("b")], "k1"
        )
        kb2 = KnowledgeBase([EntityDescription("c", [("n", "text here")])], "k2")
        result = MinoanER().resolve(kb1, kb2)
        assert result.matches == set()

    def test_empty_kb(self):
        kb1 = KnowledgeBase([], "k1")
        kb2 = KnowledgeBase([EntityDescription("b", [("n", "x")])], "k2")
        result = MinoanER().resolve(kb1, kb2)
        assert result.matches == set()
