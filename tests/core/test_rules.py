"""Unit tests for the matching rules R1-R4 on hand-built graphs."""

import pytest

from repro.core.rules import (
    name_rule,
    rank_aggregation_rule,
    reciprocity_rule,
    value_rule,
)
from repro.graph.blocking_graph import DisjunctiveBlockingGraph


def graph(
    n1=2,
    n2=2,
    names_1=None,
    names_2=None,
    value_1=None,
    value_2=None,
    neighbor_1=None,
    neighbor_2=None,
) -> DisjunctiveBlockingGraph:
    return DisjunctiveBlockingGraph(
        n1=n1,
        n2=n2,
        name_matches_1=names_1 or {},
        name_matches_2=names_2 or {},
        value_candidates_1=value_1 or [()] * n1,
        value_candidates_2=value_2 or [()] * n2,
        neighbor_candidates_1=neighbor_1 or [()] * n1,
        neighbor_candidates_2=neighbor_2 or [()] * n2,
    )


class TestNameRule:
    def test_matches_alpha_edges(self):
        g = graph(names_1={0: 1}, names_2={1: 0})
        assert [pair for pair, _ in name_rule(g)] == [(0, 1)]

    def test_scores_are_infinite(self):
        g = graph(names_1={0: 1}, names_2={1: 0})
        assert name_rule(g)[0][1] == float("inf")

    def test_no_names_no_matches(self):
        assert name_rule(graph()) == []


class TestValueRule:
    def test_matches_top_candidate_above_threshold(self):
        g = graph(value_1=[((0, 2.0), (1, 1.5)), ()])
        matches = value_rule(g, set(), set(), threshold=1.0)
        assert [(pair, score) for pair, score in matches] == [((0, 0), 2.0)]

    def test_below_threshold_skipped(self):
        g = graph(value_1=[((0, 0.8),), ()])
        assert value_rule(g, set(), set(), threshold=1.0) == []

    def test_already_matched_skipped(self):
        g = graph(value_1=[((0, 2.0),), ((1, 2.0),)])
        matches = value_rule(g, {0}, set(), threshold=1.0)
        assert [pair for pair, _ in matches] == [(1, 1)]

    def test_iterates_smaller_side(self):
        # n2 < n1: rule scans side 2 and pairs come back as (e1, e2)
        g = graph(
            n1=3,
            n2=1,
            value_2=[((2, 1.7),)],
        )
        matches = value_rule(g, set(), set(), threshold=1.0)
        assert [pair for pair, _ in matches] == [(2, 0)]


class TestRankAggregationRule:
    def test_matches_best_aggregate(self):
        g = graph(
            value_1=[((0, 0.5), (1, 0.4)), ()],
            neighbor_1=[((1, 3.0),), ()],
        )
        matches = rank_aggregation_rule(g, set(), set(), theta=0.4)
        assert matches[0][0] == (0, 1)  # neighbor evidence outvotes value

    def test_without_neighbor_evidence(self):
        g = graph(
            value_1=[((0, 0.5), (1, 0.4)), ()],
            neighbor_1=[((1, 3.0),), ()],
        )
        matches = rank_aggregation_rule(
            g, set(), set(), theta=0.4, use_neighbor_evidence=False
        )
        assert matches[0][0] == (0, 0)

    def test_claimed_candidates_may_still_be_proposed(self):
        """Algorithm 2 line 11 skips matched *sources* only: a source may
        still propose an already-claimed candidate; the final unique
        mapping resolves such conflicts (see the matcher tests)."""
        g = graph(
            value_1=[((0, 1.0),), ((0, 0.9),)],
        )
        matches = rank_aggregation_rule(g, set(), set(), theta=0.6)
        assert [pair for pair, _ in matches] == [(0, 0), (1, 0)]

    def test_claimed_sources_are_skipped_across_sides(self):
        """Once side 1 matches (a0, b0), b0 is in M and the side-2 loop
        must not use it as a source."""
        g = graph(
            value_1=[((0, 1.0),), ()],
            value_2=[((1, 0.9),), ()],  # b0 would propose a1
        )
        matches = rank_aggregation_rule(g, set(), set(), theta=0.6)
        assert [pair for pair, _ in matches] == [(0, 0)]

    def test_matched_nodes_skipped(self):
        g = graph(value_1=[((0, 1.0),), ((1, 1.0),)])
        matches = rank_aggregation_rule(g, {0}, {0}, theta=0.6)
        assert [pair for pair, _ in matches] == [(1, 1)]

    def test_both_sides_processed(self):
        g = graph(
            value_1=[(), ()],
            value_2=[((1, 0.9),), ()],
        )
        matches = rank_aggregation_rule(g, set(), set(), theta=0.6)
        assert [pair for pair, _ in matches] == [(1, 0)]


class TestReciprocityRule:
    def test_keeps_reciprocal_pairs(self):
        g = graph(
            value_1=[((0, 1.0),), ()],
            value_2=[((0, 1.0),), ()],
        )
        kept = reciprocity_rule(g, [((0, 0), 1.0)])
        assert [pair for pair, _ in kept] == [(0, 0)]

    def test_drops_one_way_pairs(self):
        g = graph(
            value_1=[((0, 1.0),), ()],
            value_2=[(), ()],  # side 2 kept nothing back
        )
        assert reciprocity_rule(g, [((0, 0), 1.0)]) == []

    def test_never_adds(self):
        g = graph(
            value_1=[((0, 1.0),), ()],
            value_2=[((0, 1.0),), ()],
        )
        assert reciprocity_rule(g, []) == []
