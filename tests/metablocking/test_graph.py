"""Unit tests for the Meta-blocking pair graph."""

import math

import pytest

from repro.blocking.base import Block, BlockCollection
from repro.metablocking.graph import build_pair_graph


@pytest.fixture
def sample_graph():
    blocks = BlockCollection(
        [
            Block("t1", [0, 1], [0]),
            Block("t2", [0], [0, 1]),
            Block("t3", [1], [1]),
        ]
    )
    return build_pair_graph(blocks, n1=2, n2=2)


class TestBuildPairGraph:
    def test_edges_cover_all_cooccurring_pairs(self, sample_graph):
        assert set(sample_graph.edges()) == {(0, 0), (1, 0), (0, 1), (1, 1)}

    def test_shared_block_counts(self, sample_graph):
        assert sample_graph.pair_statistics[(0, 0)].shared_blocks == 2
        assert sample_graph.pair_statistics[(1, 1)].shared_blocks == 1

    def test_inverse_cardinality_sum(self, sample_graph):
        # (0,0) in t1 (2 comparisons) and t2 (2 comparisons): 1/2 + 1/2
        assert sample_graph.pair_statistics[(0, 0)].inverse_cardinality_sum == pytest.approx(1.0)

    def test_log_damped_sum_matches_beta_formula(self, sample_graph):
        expected = 2 * (1.0 / math.log2(3))
        assert sample_graph.pair_statistics[(0, 0)].log_damped_sum == pytest.approx(expected)

    def test_blocks_per_entity(self, sample_graph):
        assert sample_graph.blocks_per_entity_1 == [2, 2]
        assert sample_graph.blocks_per_entity_2 == [2, 2]

    def test_total_blocks(self, sample_graph):
        assert sample_graph.total_blocks == 3

    def test_weighted_edges_deterministic(self, sample_graph):
        from repro.metablocking.weights import cbs

        first = sample_graph.weighted_edges(cbs)
        second = sample_graph.weighted_edges(cbs)
        assert first == second
        assert [edge[:2] for edge in first] == sorted(edge[:2] for edge in first)

    def test_empty_collection(self):
        graph = build_pair_graph(BlockCollection(), n1=3, n2=3)
        assert graph.edge_count() == 0
