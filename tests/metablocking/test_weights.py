"""Unit tests for Meta-blocking weighting schemes."""

import math

import pytest

from repro.blocking.base import Block, BlockCollection
from repro.metablocking.graph import build_pair_graph
from repro.metablocking.weights import (
    WEIGHT_SCHEMES,
    arcs,
    arcs_log,
    cbs,
    ecbs,
    jaccard_scheme,
)


@pytest.fixture
def graph():
    blocks = BlockCollection(
        [
            Block("shared1", [0], [0]),
            Block("shared2", [0], [0]),
            Block("big", [0, 1, 2], [0, 1, 2]),
        ]
    )
    return build_pair_graph(blocks, n1=3, n2=3)


class TestSchemes:
    def test_cbs_counts_blocks(self, graph):
        assert cbs(graph, 0, 0) == 3.0
        assert cbs(graph, 1, 1) == 1.0

    def test_ecbs_penalises_prolific_entities(self, graph):
        # Pair (1,1) and (2,2) share 1 block each; both entities appear
        # in 1 block, so their ECBS is equal and higher than a pair with
        # the same CBS involving a more prolific entity would be.
        assert ecbs(graph, 1, 1) == pytest.approx(ecbs(graph, 2, 2))
        prolific_pair = ecbs(graph, 0, 1)  # entity 0 appears in 3 blocks
        assert prolific_pair < ecbs(graph, 1, 1)

    def test_jaccard_scheme(self, graph):
        # (0,0): 3 shared; |B_0| = 3 each -> union = 3.
        assert jaccard_scheme(graph, 0, 0) == pytest.approx(1.0)
        # (1,1): 1 shared of 1+1 blocks.
        assert jaccard_scheme(graph, 1, 1) == pytest.approx(1.0)
        assert jaccard_scheme(graph, 0, 1) == pytest.approx(1 / 3)

    def test_arcs_prefers_small_blocks(self, graph):
        # (0,0): 1/1 + 1/1 + 1/9; (1,1): only the big block, 1/9.
        assert arcs(graph, 0, 0) == pytest.approx(2 + 1 / 9)
        assert arcs(graph, 1, 1) == pytest.approx(1 / 9)

    def test_arcs_log_matches_minoaner_beta(self, graph):
        expected = 2 * (1 / math.log2(2)) + 1 / math.log2(10)
        assert arcs_log(graph, 0, 0) == pytest.approx(expected)

    def test_registry_complete(self):
        assert set(WEIGHT_SCHEMES) == {"cbs", "ecbs", "js", "arcs", "arcs_log"}

    def test_all_schemes_nonnegative(self, graph):
        for name, scheme in WEIGHT_SCHEMES.items():
            for pair in graph.edges():
                assert scheme(graph, *pair) >= 0.0, name
