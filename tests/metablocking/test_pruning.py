"""Unit tests for Meta-blocking pruning algorithms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metablocking.pruning import (
    cardinality_edge_pruning,
    cardinality_node_pruning,
    weight_edge_pruning,
    weight_node_pruning,
)

EDGES = [
    (0, 0, 5.0),
    (0, 1, 1.0),
    (1, 0, 2.0),
    (1, 1, 4.0),
    (2, 2, 0.5),
]


class TestWEP:
    def test_keeps_above_mean(self):
        survivors = weight_edge_pruning(EDGES)
        # mean = 2.5
        assert survivors == {(0, 0), (1, 1)}

    def test_empty(self):
        assert weight_edge_pruning([]) == set()

    def test_uniform_weights_all_pruned(self):
        assert weight_edge_pruning([(0, 0, 1.0), (1, 1, 1.0)]) == set()


class TestCEP:
    def test_top_k_globally(self):
        assert cardinality_edge_pruning(EDGES, 2) == {(0, 0), (1, 1)}

    def test_k_zero(self):
        assert cardinality_edge_pruning(EDGES, 0) == set()

    def test_k_larger_than_edges(self):
        assert len(cardinality_edge_pruning(EDGES, 100)) == len(EDGES)

    def test_negative_k(self):
        with pytest.raises(ValueError):
            cardinality_edge_pruning(EDGES, -1)


class TestWNP:
    def test_local_means(self):
        survivors = weight_node_pruning(EDGES)
        # node a0 edges: 5, 1 -> mean 3: keeps (0,0)
        assert (0, 0) in survivors
        assert (0, 1) not in survivors or (1, 1) in survivors

    def test_single_edge_per_node_survives_nothing(self):
        # a node's only edge equals its mean -> strictly-above fails
        assert weight_node_pruning([(0, 0, 1.0)]) == set()


class TestCNP:
    def test_top_k_per_node_union(self):
        survivors = cardinality_node_pruning(EDGES, 1)
        assert (0, 0) in survivors  # best of a0 and of b0
        assert (1, 1) in survivors  # best of a1 and of b1
        assert (2, 2) in survivors  # only edge of a2/b2
        assert (0, 1) not in survivors or (1, 0) not in survivors

    def test_require_both_is_stricter(self):
        union = cardinality_node_pruning(EDGES, 1, require_both=False)
        both = cardinality_node_pruning(EDGES, 1, require_both=True)
        assert both <= union

    def test_negative_k(self):
        with pytest.raises(ValueError):
            cardinality_node_pruning(EDGES, -2)


edges_strategy = st.lists(
    st.tuples(
        st.integers(0, 6), st.integers(0, 6), st.floats(0.01, 9.0, allow_nan=False)
    ),
    max_size=30,
    unique_by=lambda e: (e[0], e[1]),
)


class TestPruningProperties:
    @given(edges=edges_strategy)
    @settings(max_examples=60)
    def test_all_outputs_are_subsets(self, edges):
        pairs = {(a, b) for a, b, _ in edges}
        assert weight_edge_pruning(edges) <= pairs
        assert cardinality_edge_pruning(edges, 3) <= pairs
        assert weight_node_pruning(edges) <= pairs
        assert cardinality_node_pruning(edges, 2) <= pairs

    @given(edges=edges_strategy, k=st.integers(0, 10))
    @settings(max_examples=60)
    def test_cep_size_bounded_by_k(self, edges, k):
        assert len(cardinality_edge_pruning(edges, k)) <= k

    @given(edges=edges_strategy, k=st.integers(1, 5))
    @settings(max_examples=60)
    def test_cnp_monotone_in_k(self, edges, k):
        smaller = cardinality_node_pruning(edges, k)
        larger = cardinality_node_pruning(edges, k + 1)
        assert smaller <= larger
