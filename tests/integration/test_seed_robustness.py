"""Seed robustness: results must not be an artifact of calibrated seeds.

The benchmark profiles fix seeds for reproducibility; these tests rerun
the headline comparisons on *other* seeds (downscaled for speed) and
assert the qualitative conclusions survive -- guarding the calibration
against seed overfitting.
"""

import pytest

from repro.baselines.bsl import BSLBaseline
from repro.core.pipeline import MinoanER
from repro.datasets.profiles import PROFILES, scaled_profile
from repro.evaluation.metrics import evaluate_matches

SEEDS = (7, 123, 20260705)


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_minoaner_strong_on_every_seed_restaurant(self, seed):
        pair = scaled_profile("restaurant", 1.0, seed=seed)
        report = MinoanER().resolve(pair.kb1, pair.kb2).evaluate(pair.ground_truth)
        assert report.f1 > 0.9, seed

    @pytest.mark.parametrize("seed", SEEDS)
    def test_minoaner_beats_bsl_on_high_variety_every_seed(self, seed):
        pair = scaled_profile("yago_imdb", 0.25, seed=seed)
        gt = pair.ground_truth
        minoan = MinoanER().resolve(pair.kb1, pair.kb2).evaluate(gt)
        bsl = BSLBaseline(ngram_sizes=(1, 2)).run(pair.kb1, pair.kb2, gt)
        bsl_report = evaluate_matches(bsl.best_matches, gt)
        assert minoan.f1 > bsl_report.f1, (seed, minoan.f1, bsl_report.f1)
        assert minoan.f1 > 0.75, seed

    @pytest.mark.parametrize("seed", SEEDS)
    def test_neighbor_evidence_never_hurts_much(self, seed):
        from repro.core.config import MinoanERConfig

        pair = scaled_profile("yago_imdb", 0.2, seed=seed)
        gt = pair.ground_truth
        full = MinoanER().resolve(pair.kb1, pair.kb2).evaluate(gt)
        blind = (
            MinoanER(MinoanERConfig(use_neighbor_evidence=False))
            .resolve(pair.kb1, pair.kb2)
            .evaluate(gt)
        )
        assert full.f1 >= blind.f1 - 0.02, seed
