"""Parity tests: the graph-derived weights equal the reference metrics.

The paper's efficiency story rests on deriving valueSim from token-block
sizes and neighborNSim from propagated beta edges instead of computing
them pairwise (sections 3.1, 3.3).  These tests pin the equivalence:
with purging off and K large enough that nothing is pruned, the graph's
``beta`` must equal Definition 2.1 exactly and its ``gamma`` must equal
Definition 2.5 restricted to value-overlapping neighbor pairs.
"""

import pytest

from repro.blocking.name_blocking import name_blocks
from repro.blocking.token_blocking import token_blocks
from repro.datasets.generator import ProfileSpec, generate_kb_pair
from repro.graph.construction import build_blocking_graph
from repro.kb.statistics import KBStatistics
from repro.similarity.neighbor import neighbor_similarity
from repro.similarity.value import value_similarity


@pytest.fixture(scope="module")
def unpruned():
    spec = ProfileSpec(
        name="parity",
        seed=31,
        n_matches=25,
        extras1=5,
        extras2=10,
        core_tokens=6,
        medium_vocab=150,
        relation_types=2,
        out_degree=2.0,
    )
    pair = generate_kb_pair(spec)
    stats1 = KBStatistics(pair.kb1, top_k_name_attributes=2, top_n_relations=3)
    stats2 = KBStatistics(pair.kb2, top_k_name_attributes=2, top_n_relations=3)
    graph = build_blocking_graph(
        stats1,
        stats2,
        name_blocks(stats1, stats2),
        token_blocks(pair.kb1, pair.kb2),  # no purging
        k=10_000,  # no pruning
    )
    return pair, stats1, stats2, graph


class TestBetaParity:
    def test_beta_equals_value_similarity_everywhere(self, unpruned):
        pair, _, _, graph = unpruned
        for eid1 in range(len(pair.kb1)):
            betas = dict(graph.value_candidates(1, eid1))
            for eid2 in range(len(pair.kb2)):
                expected = value_similarity(pair.kb1, pair.kb2, eid1, eid2)
                assert betas.get(eid2, 0.0) == pytest.approx(expected), (eid1, eid2)

    def test_beta_symmetric_across_sides(self, unpruned):
        pair, _, _, graph = unpruned
        for eid1 in range(len(pair.kb1)):
            for eid2, weight in graph.value_candidates(1, eid1):
                assert graph.beta(2, eid2, eid1) == pytest.approx(weight)


class TestGammaParity:
    def test_gamma_equals_neighbor_similarity(self, unpruned):
        """With nothing pruned, gamma is exactly neighborNSim: the sum of
        valueSim over all pairs of top-N neighbors (zero-similarity
        pairs contribute nothing either way)."""
        pair, stats1, stats2, graph = unpruned
        for eid1 in range(len(pair.kb1)):
            gammas = dict(graph.neighbor_candidates(1, eid1))
            for eid2 in range(len(pair.kb2)):
                expected = neighbor_similarity(stats1, stats2, eid1, eid2)
                assert gammas.get(eid2, 0.0) == pytest.approx(expected), (eid1, eid2)


class TestNameParity:
    def test_alpha_edges_are_exactly_exclusive_shared_names(self, unpruned):
        pair, stats1, stats2, graph = unpruned
        from repro.blocking.name_blocking import normalize_name

        # Recompute exclusivity by hand.
        counts1: dict[str, list[int]] = {}
        counts2: dict[str, list[int]] = {}
        for stats, counts in ((stats1, counts1), (stats2, counts2)):
            for eid in range(len(stats.kb)):
                for raw in stats.names(eid):
                    name = normalize_name(raw)
                    if name:
                        counts.setdefault(name, []).append(eid)
        expected = set()
        for name, eids1 in counts1.items():
            eids2 = counts2.get(name, [])
            if len(set(eids1)) == 1 and len(set(eids2)) == 1:
                expected.add((eids1[0], eids2[0]))
        actual = {
            (eid1, graph.name_match(1, eid1))
            for eid1 in range(len(pair.kb1))
            if graph.name_match(1, eid1) is not None
        }
        # Alpha edges may be a subset when one entity carries two
        # exclusive names pointing to different partners; every alpha
        # edge must be justified though.
        assert actual <= expected
        assert len(actual) >= len(expected) - 2
