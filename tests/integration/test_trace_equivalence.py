"""Distributed-trace equivalence: a ``process`` trace equals a ``serial`` one.

The tentpole property of cross-process trace propagation: running the
stage-parallel pipeline with the same partitioning on different
backends must produce *structurally identical* traces -- same span
names at the same depths, same worker-side kernel-dispatch counter
totals -- because every partition attempt records into a child recorder
inside the worker and the driver merges the snapshot back.  Before
merging existed, the ``process`` backend silently dropped all
worker-side telemetry.
"""

import json

import pytest

from repro.core.config import MinoanERConfig
from repro.obs import Recorder, to_json, use_recorder
from repro.parallel.context import ParallelContext
from repro.parallel.pipeline import ParallelMinoanER
from repro.resilience import RetryPolicy, parse_chaos, use_faults


def traced_resolve(pair, backend, chaos=None, failure_mode="fail_fast"):
    recorder = Recorder(trace_id="trace-equivalence")
    config = MinoanERConfig(
        kernel_backend="python",
        failure_mode=failure_mode,
        retry_base_delay_s=0.0,
    )
    policy = (
        RetryPolicy(max_attempts=4, base_delay_s=0.0)
        if failure_mode != "fail_fast"
        else None
    )
    plan = parse_chaos(chaos) if chaos else None
    with use_recorder(recorder):
        with ParallelContext(
            num_workers=2,
            backend=backend,
            failure_mode=failure_mode,
            retry_policy=policy,
        ) as context:
            pipeline = ParallelMinoanER(config, context)
            if plan is not None:
                with use_faults(plan):
                    result = pipeline.resolve(pair.kb1, pair.kb2)
            else:
                result = pipeline.resolve(pair.kb1, pair.kb2)
    return recorder, result


def span_shape(recorder):
    """The trace's structure, stripped of ids and timings."""
    return sorted((span.name, span.depth) for span in recorder.spans())


def kernel_counters(recorder):
    return {
        name: value
        for name, value in recorder.counters().items()
        if name.startswith("kernels.dispatch.")
    }


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestBackendTraceEquivalence:
    def test_span_shapes_identical_to_serial(self, mini_pair, backend):
        serial, _ = traced_resolve(mini_pair, "serial")
        parallel, _ = traced_resolve(mini_pair, backend)
        assert span_shape(parallel) == span_shape(serial)

    def test_kernel_dispatch_totals_identical_to_serial(self, mini_pair, backend):
        serial, serial_result = traced_resolve(mini_pair, "serial")
        parallel, parallel_result = traced_resolve(mini_pair, backend)
        assert kernel_counters(serial), "serial run recorded no dispatches"
        assert kernel_counters(parallel) == kernel_counters(serial)
        assert parallel_result.matches == serial_result.matches

    def test_worker_spans_parented_under_partition_spans(self, mini_pair, backend):
        recorder, _ = traced_resolve(mini_pair, backend)
        spans = recorder.spans()
        by_id = {span.span_id: span for span in spans}
        workers = [span for span in spans if span.name == "worker"]
        assert workers, "no worker spans were merged back"
        for span in workers:
            parent = by_id[span.parent_id]
            assert ":partition-" in parent.name
            assert isinstance(span.attributes.get("pid"), int)
            # Rebasing: the worker sits on the driver's time axis, at
            # or after its partition span's start.
            assert span.start >= parent.start


class TestProcessBackendSpecifics:
    def test_process_workers_report_foreign_pids(self, mini_pair):
        import os

        recorder, _ = traced_resolve(mini_pair, "process")
        pids = {
            span.attributes["pid"]
            for span in recorder.spans()
            if span.name == "worker"
        }
        assert pids, "no worker spans"
        assert os.getpid() not in pids

    def test_trace_exports_one_json_document(self, mini_pair):
        recorder, _ = traced_resolve(mini_pair, "process")
        payload = json.loads(to_json(recorder))
        assert payload["trace_id"] == "trace-equivalence"
        names = {span["name"] for span in payload["spans"]}
        assert "worker" in names and "resolve" in names
        assert any(
            name.startswith("kernels.dispatch.") for name in payload["counters"]
        )


class TestChaosWithMerging:
    """Retried partitions must not double-count worker telemetry."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_chaos_plus_retry_matches_clean_totals(self, mini_pair, backend):
        clean, clean_result = traced_resolve(mini_pair, backend)
        chaotic, chaotic_result = traced_resolve(
            mini_pair,
            backend,
            chaos="stage:graph:beta=error*2",
            failure_mode="retry",
        )
        assert chaotic_result.matches == clean_result.matches
        assert chaotic.counter_value("retry.attempts") == 2.0
        # Only successful attempts merge, so worker-side counters match
        # the clean run exactly despite the two extra attempts.
        assert kernel_counters(chaotic) == kernel_counters(clean)
        assert span_shape(chaotic) == span_shape(clean)
