"""Cross-module integration tests: invariants spanning the whole system."""

import pytest

from repro.core.config import MinoanERConfig
from repro.core.pipeline import MinoanER
from repro.evaluation import experiments
from repro.evaluation.metrics import evaluate_matches
from repro.kb.rdf import load_ntriples, save_ntriples
from repro.parallel.context import ParallelContext
from repro.parallel.pipeline import ParallelMinoanER


class TestSystemInvariants:
    def test_graph_candidates_bound_matching_recall(self, hard_pair):
        """Matching can never recover a pair outside the pruned blocking
        graph -- the composite co-occurrence condition, which includes
        the neighbor disjunct, is the true candidate superset (section 3.1)."""
        result = MinoanER().resolve(hard_pair.kb1, hard_pair.kb2)
        candidates = result.graph.undirected_pairs()
        assert result.matches <= candidates
        covered = hard_pair.ground_truth & candidates
        matching = result.evaluate(hard_pair.ground_truth)
        assert matching.recall <= len(covered) / len(hard_pair.ground_truth) + 1e-9

    def test_composite_blocking_beats_atomic_blocks_on_nearly_similar(self, hard_pair):
        """The neighbor disjunct may cover matches whose values share no
        surviving token block (the paper's motivation for composite
        blocking)."""
        block_stats = experiments.block_statistics(hard_pair)
        result = MinoanER().resolve(hard_pair.kb1, hard_pair.kb2)
        candidates = result.graph.undirected_pairs()
        graph_recall = len(hard_pair.ground_truth & candidates) / len(
            hard_pair.ground_truth
        )
        assert graph_recall >= block_stats.report.recall - 1e-9

    def test_reciprocity_only_improves_precision(self, hard_pair):
        with_r4 = MinoanER().resolve(hard_pair.kb1, hard_pair.kb2)
        without_r4 = MinoanER(MinoanERConfig(use_reciprocity=False)).resolve(
            hard_pair.kb1, hard_pair.kb2
        )
        gt = hard_pair.ground_truth
        assert with_r4.evaluate(gt).precision >= without_r4.evaluate(gt).precision - 0.02

    def test_rules_cover_disjoint_match_sets(self, hard_pair):
        result = MinoanER().resolve(hard_pair.kb1, hard_pair.kb2)
        r1 = result.matching.matches_by_rule("R1")
        r2 = result.matching.matches_by_rule("R2")
        r3 = result.matching.matches_by_rule("R3")
        assert not (r1 & r2) and not (r1 & r3) and not (r2 & r3)
        assert r1 | r2 | r3 == result.matches

    def test_output_is_one_to_one(self, hard_pair):
        result = MinoanER().resolve(hard_pair.kb1, hard_pair.kb2)
        lefts = [a for a, _ in result.matches]
        rights = [b for _, b in result.matches]
        assert len(lefts) == len(set(lefts))
        assert len(rights) == len(set(rights))

    def test_more_candidates_do_not_lose_recall(self, hard_pair):
        narrow = MinoanER(MinoanERConfig(candidates_k=2)).resolve(
            hard_pair.kb1, hard_pair.kb2
        )
        wide = MinoanER(MinoanERConfig(candidates_k=30)).resolve(
            hard_pair.kb1, hard_pair.kb2
        )
        gt = hard_pair.ground_truth
        assert wide.evaluate(gt).recall >= narrow.evaluate(gt).recall - 0.05


class TestRoundTripThroughRDF:
    def test_resolution_survives_serialisation(self, mini_pair, tmp_path):
        """Saving both KBs to N-Triples and reloading yields identical matches."""
        direct = MinoanER().resolve(mini_pair.kb1, mini_pair.kb2)
        path1, path2 = tmp_path / "kb1.nt", tmp_path / "kb2.nt"
        save_ntriples(mini_pair.kb1, path1)
        save_ntriples(mini_pair.kb2, path2)
        kb1 = load_ntriples(path1)
        kb2 = load_ntriples(path2)
        reloaded = MinoanER().resolve(kb1, kb2)
        assert reloaded.uri_matches() == direct.uri_matches()


class TestSerialParallelAgreement:
    def test_full_agreement_with_all_backends(self, hard_pair):
        serial = MinoanER().resolve(hard_pair.kb1, hard_pair.kb2)
        for backend in ("serial", "thread"):
            with ParallelContext(num_workers=3, backend=backend) as context:
                parallel = ParallelMinoanER(context=context).resolve(
                    hard_pair.kb1, hard_pair.kb2
                )
            assert parallel.matches == serial.matches, backend


class TestBaselineOrdering:
    def test_minoaner_beats_value_only_on_hard_data(self, hard_pair):
        """The paper's core claim at miniature scale: on nearly similar
        KBs, the composite evidence beats a fine-tuned value-only grid."""
        from repro.baselines.bsl import BSLBaseline

        gt = hard_pair.ground_truth
        minoan = MinoanER().resolve(hard_pair.kb1, hard_pair.kb2).evaluate(gt)
        bsl = BSLBaseline(ngram_sizes=(1,)).run(hard_pair.kb1, hard_pair.kb2, gt)
        assert minoan.f1 >= evaluate_matches(bsl.best_matches, gt).f1 - 0.03
