"""The headline resilience property: chaos + retry == clean run, bit for bit.

Transient faults recovered by the retry policy recompute the same work
from the same immutable inputs, so a chaotic run must be *bit-identical*
to a clean one -- same match pairs, same producing rules, same float
scores -- on every profile and kernel backend.  Anything less means the
retry path has hidden state.
"""

import pytest

from repro.core.config import MinoanERConfig
from repro.core.pipeline import MinoanER
from repro.obs import Recorder, use_recorder
from repro.parallel.context import ParallelContext
from repro.parallel.pipeline import ParallelMinoanER
from repro.resilience import RetryPolicy, parse_chaos, use_faults

BACKENDS = ["dict", "python", "numpy"]

CHAOS_SPECS = [
    "stage:*=error*2",
    "stage:statistics=error*1,stage:token_blocking=error*1",
    "stage:*=delay:0.001*3",
]


def retry_config(kernel_backend: str) -> MinoanERConfig:
    return MinoanERConfig(
        kernel_backend=kernel_backend,
        failure_mode="retry",
        retry_base_delay_s=0.0,
    )


def assert_identical(chaotic, clean) -> None:
    assert chaotic.matches == clean.matches
    assert chaotic.matching.rule_of == clean.matching.rule_of
    assert chaotic.matching.scores == clean.matching.scores
    assert not chaotic.is_degraded


@pytest.fixture(params=["mini", "hard"])
def pair(request, mini_pair, hard_pair):
    return mini_pair if request.param == "mini" else hard_pair


class TestSerialPipeline:
    @pytest.mark.parametrize("kernel_backend", BACKENDS)
    def test_transient_faults_plus_retry_is_bit_identical(
        self, pair, kernel_backend
    ):
        if kernel_backend == "numpy":
            pytest.importorskip("numpy")
        clean = MinoanER(MinoanERConfig(kernel_backend=kernel_backend)).resolve(
            pair.kb1, pair.kb2
        )
        plan = parse_chaos("stage:*=error*2")
        recorder = Recorder()
        with use_recorder(recorder), use_faults(plan):
            chaotic = MinoanER(retry_config(kernel_backend)).resolve(
                pair.kb1, pair.kb2
            )
        assert plan.total_fired() == 2  # the chaos really happened
        assert recorder.counter_value("retry.attempts") == 2
        assert_identical(chaotic, clean)

    @pytest.mark.parametrize("spec", CHAOS_SPECS)
    def test_identical_across_chaos_schedules(self, mini_pair, spec):
        clean = MinoanER().resolve(mini_pair.kb1, mini_pair.kb2)
        plan = parse_chaos(spec)
        with use_faults(plan):
            chaotic = MinoanER(retry_config("auto")).resolve(
                mini_pair.kb1, mini_pair.kb2
            )
        assert plan.total_fired() >= 1
        assert_identical(chaotic, clean)

    def test_probabilistic_chaos_is_survivable_and_identical(self, mini_pair):
        # A seeded coin per phase, never two faults in a row on the
        # same phase beyond the retry budget: times=2 bounds the total.
        clean = MinoanER().resolve(mini_pair.kb1, mini_pair.kb2)
        plan = parse_chaos("stage:*=error*2@0.5", seed=3)
        with use_faults(plan):
            chaotic = MinoanER(retry_config("auto")).resolve(
                mini_pair.kb1, mini_pair.kb2
            )
        assert_identical(chaotic, clean)


class TestParallelPipeline:
    @pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 3)])
    def test_chaotic_parallel_run_equals_clean_parallel_run(
        self, mini_pair, backend, workers
    ):
        with ParallelContext(num_workers=workers, backend=backend) as context:
            clean = ParallelMinoanER(context=context).resolve(
                mini_pair.kb1, mini_pair.kb2
            )
        plan = parse_chaos("stage:*=error*2")
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter_ratio=0.0)
        with ParallelContext(
            num_workers=workers,
            backend=backend,
            failure_mode="retry",
            retry_policy=policy,
        ) as context:
            with use_faults(plan):
                chaotic = ParallelMinoanER(context=context).resolve(
                    mini_pair.kb1, mini_pair.kb2
                )
        assert plan.total_fired() == 2
        assert_identical(chaotic, clean)
        # Serial and parallel agree on the match set either way.
        assert chaotic.matches == MinoanER().resolve(
            mini_pair.kb1, mini_pair.kb2
        ).matches

    def test_partition_level_faults_recovered_on_thread_backend(self, mini_pair):
        with ParallelContext(num_workers=2, backend="thread") as context:
            clean = ParallelMinoanER(context=context).resolve(
                mini_pair.kb1, mini_pair.kb2
            )
        plan = parse_chaos(
            "stage:graph:beta=error*2,stage:match:R2=error*1"
        )
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter_ratio=0.0)
        with ParallelContext(
            num_workers=2,
            backend="thread",
            failure_mode="retry",
            retry_policy=policy,
        ) as context:
            with use_faults(plan):
                chaotic = ParallelMinoanER(context=context).resolve(
                    mini_pair.kb1, mini_pair.kb2
                )
        assert plan.fired().keys() == {"stage:graph:beta", "stage:match:R2"}
        assert_identical(chaotic, clean)
