"""Property test: any interleaving of live edits equals a cold rebuild.

Hypothesis drives random sequences of ``upsert`` / ``delete`` /
``compact`` against a :class:`LiveEngine` (mmap on and off) and a
:class:`LiveShardRouter` (1-4 shards), then replays the *net* effect of
the sequence as a plain entity list and rebuilds a frozen index from
scratch.  Every probe -- one per entity ever mentioned, plus a
guaranteed miss -- must decide identically on both sides.

The KB family is relation-neutral by construction (two literal
attributes, globally distinct unique tokens plus a controlled shared
token), which is exactly the scope ``docs/live_index.md`` claims exact
equivalence for.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MinoanERConfig
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.serving import LiveEngine, MatchEngine, ResolutionIndex
from repro.sharding import InlineReplica, LiveShardRouter, ShardPlanner, ShardWorker

CONFIG = MinoanERConfig()

POOL = 12  # URIs 0..POOL-1; base holds the first 8


def make_entity(i: int, version: int) -> EntityDescription:
    """Version ``v`` of entity ``i``: unique tokens carry the version,
    the shared token ties entities together so EFs (and thus weights)
    actually shift as the edit sequence runs."""
    return EntityDescription(
        f"http://kb2/e{i}",
        [
            ("name", f"alpha{i}v{version} tag{i}v{version}"),
            ("info", f"shared extra{i}v{version}"),
        ],
    )


BASE = [make_entity(i, 0) for i in range(8)]


def build_index(entities):
    return ResolutionIndex.build(KnowledgeBase(list(entities), name="kb2"), CONFIG)


operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("upsert"),
            st.integers(min_value=0, max_value=POOL - 1),
            st.integers(min_value=1, max_value=3),
        ),
        st.tuples(
            st.just("delete"),
            st.integers(min_value=0, max_value=POOL - 1),
            st.just(0),
        ),
        st.tuples(st.just("compact"), st.just(0), st.just(0)),
    ),
    min_size=1,
    max_size=12,
)


def net_state(ops) -> list[EntityDescription]:
    """The entity list a cold observer would build after ``ops``."""
    state = {i: 0 for i in range(8)}  # uri index -> version, present only
    for op, i, version in ops:
        if op == "upsert":
            state.pop(i, None)
            state[i] = version  # re-insert at the end: rebuild order
        elif op == "delete":
            state.pop(i, None)
    return [make_entity(i, version) for i, version in state.items()]


def probes(ops):
    mentioned = set(range(8)) | {i for op, i, _ in ops if op != "compact"}
    out = []
    for i in sorted(mentioned):
        for version in range(4):
            out.append(
                EntityDescription(
                    f"http://q/{i}v{version}",
                    [("label", f"alpha{i}v{version} tag{i}v{version}")],
                )
            )
    out.append(EntityDescription("http://q/miss", [("label", "nonsense never")]))
    return out


def decision_fields(decision):
    return (
        decision.query_uri,
        decision.kb2_uri,
        decision.rule,
        decision.score,
        decision.candidates,
        decision.degraded,
    )


def drive(target, ops, tmp_path):
    for op, i, version in ops:
        if op == "upsert":
            target.upsert(make_entity(i, version))
        elif op == "delete":
            target.delete(f"http://kb2/e{i}")
        else:
            target.compact(tmp_path / "kb2.idx")


class TestLiveEngineProperty:
    @pytest.mark.parametrize("mmap", [False, True])
    @given(ops=operations)
    @settings(max_examples=25, deadline=None)
    def test_any_interleaving_equals_cold_rebuild(self, mmap, ops, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("live")
        index = build_index(BASE)
        if mmap:
            index.save(tmp_path / "base.idx")
            index = ResolutionIndex.load(tmp_path / "base.idx", mmap=True)
        engine = LiveEngine(index, CONFIG)
        drive(engine, ops, tmp_path)
        cold = MatchEngine(build_index(net_state(ops)), CONFIG)
        for probe in probes(ops):
            assert decision_fields(engine.match(probe)) == decision_fields(
                cold.match(probe)
            ), (probe.uri, ops)
        # Single and batch paths agree with each other too.
        batch = probes(ops)
        ours = [decision_fields(d) for d in engine.match_batch(batch)]
        theirs = [decision_fields(d) for d in cold.match_batch(batch)]
        assert ours == theirs


class TestLiveShardRouterProperty:
    @given(ops=operations, shards=st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_any_interleaving_any_shard_count(self, ops, shards, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("live")
        index = build_index(BASE)
        replica_sets = [
            [InlineReplica(ShardWorker(MatchEngine(shard, CONFIG)))]
            for shard in ShardPlanner(shards).plan(index)
        ]
        router = LiveShardRouter(index, replica_sets, CONFIG)
        router.index_path = tmp_path / "kb2.idx"
        try:
            drive(router, ops, tmp_path)
            cold = MatchEngine(build_index(net_state(ops)), CONFIG)
            for probe in probes(ops):
                assert decision_fields(router.match(probe)) == decision_fields(
                    cold.match(probe)
                ), (probe.uri, ops, shards)
        finally:
            router.close()
