"""Unit tests for the EntityDescription data model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kb.entity import EntityDescription


class TestConstruction:
    def test_basic_pairs(self):
        entity = EntityDescription("e1", [("a", "1"), ("b", "2")])
        assert entity.uri == "e1"
        assert ("a", "1") in entity
        assert ("b", "2") in entity

    def test_duplicate_pairs_collapse(self):
        entity = EntityDescription("e1", [("a", "1"), ("a", "1"), ("a", "1")])
        assert len(entity) == 1

    def test_multi_valued_attribute_kept(self):
        entity = EntityDescription("e1", [("a", "1"), ("a", "2")])
        assert len(entity) == 2
        assert entity.values_of("a") == ("1", "2")

    def test_order_normalised(self):
        left = EntityDescription("e1", [("b", "2"), ("a", "1")])
        right = EntityDescription("e1", [("a", "1"), ("b", "2")])
        assert left == right
        assert hash(left) == hash(right)

    def test_empty_uri_rejected(self):
        with pytest.raises(ValueError):
            EntityDescription("", [("a", "1")])

    def test_non_string_uri_rejected(self):
        with pytest.raises(ValueError):
            EntityDescription(42, [("a", "1")])  # type: ignore[arg-type]

    def test_values_coerced_to_str(self):
        entity = EntityDescription("e1", [("a", 7)])  # type: ignore[list-item]
        assert entity.values_of("a") == ("7",)

    def test_from_mapping_single_and_multi(self):
        entity = EntityDescription.from_mapping("e1", {"a": ["1", "2"], "b": "3"})
        assert entity.values_of("a") == ("1", "2")
        assert entity.values_of("b") == ("3",)


class TestAccessors:
    def test_attributes(self):
        entity = EntityDescription("e1", [("a", "1"), ("b", "2"), ("a", "3")])
        assert entity.attributes() == {"a", "b"}

    def test_values(self):
        entity = EntityDescription("e1", [("a", "1"), ("b", "1")])
        assert sorted(entity.values()) == ["1", "1"]

    def test_values_of_missing_attribute(self):
        entity = EntityDescription("e1", [("a", "1")])
        assert entity.values_of("zzz") == ()

    def test_iteration_yields_pairs(self):
        pairs = [("a", "1"), ("b", "2")]
        entity = EntityDescription("e1", pairs)
        assert sorted(entity) == sorted(pairs)

    def test_repr_mentions_uri(self):
        assert "e1" in repr(EntityDescription("e1"))


class TestEquality:
    def test_different_uri_not_equal(self):
        assert EntityDescription("e1", [("a", "1")]) != EntityDescription("e2", [("a", "1")])

    def test_different_pairs_not_equal(self):
        assert EntityDescription("e1", [("a", "1")]) != EntityDescription("e1", [("a", "2")])

    def test_not_equal_to_other_types(self):
        assert EntityDescription("e1") != "e1"

    def test_usable_in_sets(self):
        entities = {EntityDescription("e1"), EntityDescription("e1"), EntityDescription("e2")}
        assert len(entities) == 2


attribute_strategy = st.text(min_size=1, max_size=8)
pairs_strategy = st.lists(
    st.tuples(attribute_strategy, st.text(max_size=12)), max_size=10
)


class TestProperties:
    @given(pairs=pairs_strategy)
    def test_pairs_are_deduplicated_and_sorted(self, pairs):
        entity = EntityDescription("e", pairs)
        assert list(entity.pairs) == sorted(set(pairs))

    @given(pairs=pairs_strategy)
    def test_construction_is_idempotent(self, pairs):
        once = EntityDescription("e", pairs)
        twice = EntityDescription("e", once.pairs)
        assert once == twice

    @given(pairs=pairs_strategy)
    def test_attributes_cover_every_pair(self, pairs):
        entity = EntityDescription("e", pairs)
        for attribute, value in entity:
            assert attribute in entity.attributes()
            assert value in entity.values_of(attribute)
