"""Tests for the statistics describe helper and repr surfaces."""

from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.statistics import KBStatistics, describe


class TestDescribe:
    def test_orders_by_value_descending(self):
        text = describe({"low": 0.1, "high": 0.9, "mid": 0.5})
        lines = text.splitlines()
        assert "high" in lines[0]
        assert "low" in lines[-1]

    def test_top_limits_entries(self):
        stats = {f"k{i}": float(i) for i in range(20)}
        assert len(describe(stats, top=5).splitlines()) == 5

    def test_empty(self):
        assert describe({}) == ""


class TestReprs:
    def test_statistics_repr_shows_names(self):
        kb = KnowledgeBase(
            [EntityDescription("a", [("name", "x")]), EntityDescription("b", [("name", "y")])],
            name="mini",
        )
        stats = KBStatistics(kb, top_k_name_attributes=1)
        text = repr(stats)
        assert "mini" in text
        assert "name" in text
