"""Unit tests for the KnowledgeBase container."""

import pytest

from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase, subset


def build_sample() -> KnowledgeBase:
    return KnowledgeBase(
        [
            EntityDescription("r1", [("label", "fat duck"), ("chef", "c1"), ("city", "b1")]),
            EntityDescription("c1", [("label", "john lake")]),
            EntityDescription("b1", [("label", "bray village"), ("country", "u1")]),
            EntityDescription("u1", [("label", "united kingdom")]),
        ],
        name="sample",
    )


class TestStructure:
    def test_relations_detected(self):
        kb = build_sample()
        assert kb.relations(0) == (("chef", 1), ("city", 2))

    def test_neighbors(self):
        kb = build_sample()
        assert set(kb.neighbors(0)) == {1, 2}

    def test_literal_values_exclude_relations(self):
        kb = build_sample()
        assert kb.literal_values(0) == ("fat duck",)

    def test_self_reference_is_literal(self):
        kb = KnowledgeBase([EntityDescription("e", [("p", "e")])])
        assert kb.relations(0) == ()
        assert kb.literal_values(0) == ("e",)

    def test_uri_matching_other_kb_is_literal(self):
        kb = KnowledgeBase([EntityDescription("e", [("p", "unknown:uri")])])
        assert kb.relations(0) == ()

    def test_duplicate_uri_rejected(self):
        with pytest.raises(ValueError, match="duplicate URI"):
            KnowledgeBase([EntityDescription("e"), EntityDescription("e")])

    def test_id_uri_round_trip(self):
        kb = build_sample()
        for eid in range(len(kb)):
            assert kb.id_of(kb.uri_of(eid)) == eid

    def test_contains_uri(self):
        kb = build_sample()
        assert "r1" in kb
        assert "missing" not in kb


class TestTokens:
    def test_tokens_from_literals_only(self):
        kb = build_sample()
        assert kb.tokens(0) == {"fat", "duck"}

    def test_entity_frequency(self):
        kb = build_sample()
        # 'united' appears only in u1
        assert kb.entity_frequency("united") == 1
        assert kb.entity_frequency("nonexistent") == 0

    def test_token_index_lists_entities_in_order(self):
        kb = KnowledgeBase(
            [
                EntityDescription("a", [("x", "shared")]),
                EntityDescription("b", [("y", "shared")]),
            ]
        )
        assert kb.token_index["shared"] == [0, 1]

    def test_token_counted_once_per_entity(self):
        kb = KnowledgeBase([EntityDescription("a", [("x", "dup"), ("y", "dup word dup")])])
        assert kb.entity_frequency("dup") == 1


class TestAggregates:
    def test_triple_count(self):
        assert build_sample().triple_count() == 7

    def test_attribute_names(self):
        kb = build_sample()
        assert kb.attribute_names() == {"label", "chef", "city", "country"}

    def test_relation_names(self):
        kb = build_sample()
        assert kb.relation_names() == {"chef", "city", "country"}

    def test_average_tokens(self):
        kb = KnowledgeBase(
            [
                EntityDescription("a", [("x", "one two")]),
                EntityDescription("b", [("x", "three")]),
            ]
        )
        assert kb.average_tokens_per_entity() == pytest.approx(1.5)

    def test_average_tokens_empty_kb(self):
        assert KnowledgeBase([]).average_tokens_per_entity() == 0.0

    def test_len_and_iter(self):
        kb = build_sample()
        assert len(kb) == 4
        assert [e.uri for e in kb] == ["r1", "c1", "b1", "u1"]


class TestSubset:
    def test_subset_keeps_selected_entities(self):
        kb = build_sample()
        sub = subset(kb, [0, 1])
        assert len(sub) == 2
        assert sub.uri_of(0) == "r1"

    def test_subset_relations_to_dropped_become_literals(self):
        kb = build_sample()
        sub = subset(kb, [0, 1])  # b1 dropped: ("city", "b1") becomes literal
        assert sub.relations(0) == (("chef", 1),)
        assert "b1" in sub.literal_values(0)
