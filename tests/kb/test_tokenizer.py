"""Unit tests for the schema-agnostic tokenizer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kb.tokenizer import Tokenizer, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("The Fat DUCK") == ["the", "fat", "duck"]

    def test_splits_on_punctuation(self):
        assert tokenize("Bray, Berkshire (UK)") == ["bray", "berkshire", "uk"]

    def test_numbers_treated_as_strings(self):
        assert tokenize("founded 1995") == ["founded", "1995"]

    def test_mixed_alphanumerics_stay_together(self):
        assert tokenize("A-1 route66") == ["a", "1", "route66"]

    def test_empty_value(self):
        assert tokenize("") == []

    def test_only_punctuation(self):
        assert tokenize("!!! --- ???") == []

    def test_min_length_filter(self):
        assert tokenize("a bb ccc", min_length=2) == ["bb", "ccc"]

    def test_unicode_letters_kept(self):
        assert tokenize("Müller-Straße") == ["müller", "straße"]

    def test_cyrillic_and_greek(self):
        assert tokenize("Ηράκλειο Κρήτη") == ["ηράκλειο", "κρήτη"]

    def test_underscore_separates(self):
        assert tokenize("snake_case_token") == ["snake", "case", "token"]


class TestTokenizer:
    def test_default_keeps_everything(self):
        assert Tokenizer().tokens("a bb") == ["a", "bb"]

    def test_stopwords_removed_case_insensitively(self):
        tokenizer = Tokenizer(stopwords=["THE", "of"])
        assert tokenizer.tokens("The duck of Bray") == ["duck", "bray"]

    def test_min_length_validation(self):
        with pytest.raises(ValueError):
            Tokenizer(min_length=0)

    def test_token_set_unions_values(self):
        tokenizer = Tokenizer()
        tokens = tokenizer.token_set(["fat duck", "duck bray"])
        assert tokens == {"fat", "duck", "bray"}

    def test_token_set_is_frozenset(self):
        assert isinstance(Tokenizer().token_set(["x"]), frozenset)

    def test_equality_and_hash(self):
        assert Tokenizer(2, ["a"]) == Tokenizer(2, ["a"])
        assert hash(Tokenizer(2, ["a"])) == hash(Tokenizer(2, ["a"]))
        assert Tokenizer(1) != Tokenizer(2)


class TestProperties:
    @given(value=st.text(max_size=60))
    def test_tokens_are_lowercase_alphanumeric(self, value):
        for token in tokenize(value):
            assert token
            assert token == token.lower()
            assert token.isalnum()

    @given(value=st.text(max_size=60))
    def test_tokenize_is_idempotent_on_joined_output(self, value):
        tokens = tokenize(value)
        assert tokenize(" ".join(tokens)) == tokens

    @given(values=st.lists(st.text(max_size=20), max_size=6))
    def test_token_set_matches_union_of_tokens(self, values):
        tokenizer = Tokenizer()
        expected = set()
        for value in values:
            expected.update(tokenizer.tokens(value))
        assert tokenizer.token_set(values) == expected
