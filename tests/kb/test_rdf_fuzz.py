"""Property-based round-trip tests for the RDF writer/reader."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.rdf import iter_ntriples, kb_from_triples, save_ntriples

uri_strategy = st.from_regex(r"[a-zA-Z][a-zA-Z0-9:/._-]{0,20}", fullmatch=True)
attribute_strategy = st.from_regex(r"[a-zA-Z][a-zA-Z0-9:._-]{0,15}", fullmatch=True)
# Literal values: printable-ish text including the characters the writer
# must escape (quotes, backslashes, newlines).
value_strategy = st.text(
    alphabet=st.sampled_from(
        list("abcdefghij XYZ0123456789") + ['"', "\\", "\n", "'", "<", ">"]
    ),
    min_size=1,
    max_size=25,
)


@st.composite
def random_kb(draw):
    n = draw(st.integers(1, 6))
    uris = draw(
        st.lists(uri_strategy, min_size=n, max_size=n, unique=True)
    )
    entities = []
    for index, uri in enumerate(uris):
        pairs = []
        for _ in range(draw(st.integers(0, 4))):
            attribute = draw(attribute_strategy)
            if draw(st.booleans()) and len(uris) > 1:
                target = draw(st.sampled_from(uris))
                pairs.append((attribute, target))
            else:
                pairs.append((attribute, draw(value_strategy)))
        entities.append(EntityDescription(uri, pairs))
    return KnowledgeBase(entities, name="fuzz")


class TestRoundTrip:
    @given(kb=random_kb())
    @settings(max_examples=60, deadline=None)
    def test_save_load_preserves_structure(self, kb):
        stream = io.StringIO()
        save_ntriples(kb, stream)
        stream.seek(0)
        reloaded = kb_from_triples(iter_ntriples(stream), name="fuzz")

        # Entities that had at least one pair must survive with their
        # relation structure and literal values intact.
        for eid in range(len(kb)):
            entity = kb.entities[eid]
            if not entity.pairs:
                continue  # subject-less entities cannot appear in N-Triples
            rid = reloaded.id_of(entity.uri)
            original_relations = {
                (attribute, kb.uri_of(target)) for attribute, target in kb.relations(eid)
            }
            reloaded_relations = {
                (attribute, reloaded.uri_of(target))
                for attribute, target in reloaded.relations(rid)
            }
            # A relation target that itself has no pairs disappears from
            # the reloaded KB (never a subject), demoting the edge to a
            # literal; every surviving edge must match, and the demoted
            # ones must reappear as literals.
            assert reloaded_relations <= original_relations
            demoted = original_relations - reloaded_relations
            for _, target_uri in demoted:
                assert target_uri in reloaded.literal_values(rid)
            assert set(kb.literal_values(eid)) <= set(reloaded.literal_values(rid))

    @given(kb=random_kb())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_reaches_fixpoint(self, kb):
        """After one round trip (which may demote relations whose target
        was never a subject), further round trips change nothing."""

        def round_trip(source: KnowledgeBase) -> tuple[str, KnowledgeBase]:
            stream = io.StringIO()
            save_ntriples(source, stream)
            stream.seek(0)
            return stream.getvalue(), kb_from_triples(iter_ntriples(stream), name="fuzz")

        _, once = round_trip(kb)
        text_once, twice = round_trip(once)
        text_twice, _ = round_trip(twice)
        assert sorted(text_once.splitlines()) == sorted(text_twice.splitlines())
