"""Unit tests for relation/attribute statistics and name discovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.statistics import (
    KBStatistics,
    attribute_importance,
    relation_discriminability,
    relation_importance,
    relation_support,
)


def graph_kb() -> KnowledgeBase:
    """4 entities; 'good' relation has 3 distinct targets, 'hub' points to e0."""
    return KnowledgeBase(
        [
            EntityDescription("e0", [("name", "zero")]),
            EntityDescription("e1", [("name", "one"), ("good", "e2"), ("hub", "e0")]),
            EntityDescription("e2", [("name", "two"), ("good", "e3"), ("hub", "e0")]),
            EntityDescription("e3", [("name", "three"), ("good", "e1"), ("hub", "e0")]),
        ]
    )


class TestRelationStatistics:
    def test_support_definition(self):
        support = relation_support(graph_kb())
        # 3 instances each over |E|^2 = 16
        assert support["good"] == pytest.approx(3 / 16)
        assert support["hub"] == pytest.approx(3 / 16)

    def test_discriminability_definition(self):
        discriminability = relation_discriminability(graph_kb())
        assert discriminability["good"] == pytest.approx(1.0)  # 3 objects / 3 instances
        assert discriminability["hub"] == pytest.approx(1 / 3)  # 1 object / 3 instances

    def test_importance_is_harmonic_mean(self):
        kb = graph_kb()
        support = relation_support(kb)["good"]
        discriminability = relation_discriminability(kb)["good"]
        expected = 2 * support * discriminability / (support + discriminability)
        assert relation_importance(kb)["good"] == pytest.approx(expected)

    def test_importance_ranks_discriminative_relation_higher(self):
        importance = relation_importance(graph_kb())
        assert importance["good"] > importance["hub"]

    def test_duplicate_edges_counted_once(self):
        kb = KnowledgeBase(
            [
                EntityDescription("a", [("r", "b"), ("r", "b")]),
                EntityDescription("b"),
            ]
        )
        assert relation_support(kb)["r"] == pytest.approx(1 / 4)

    def test_empty_kb(self):
        assert relation_support(KnowledgeBase([])) == {}
        assert relation_importance(KnowledgeBase([])) == {}


class TestAttributeImportance:
    def test_prefers_universal_distinct_attribute(self):
        kb = KnowledgeBase(
            [
                EntityDescription("a", [("name", "alpha"), ("type", "x")]),
                EntityDescription("b", [("name", "beta"), ("type", "x")]),
                EntityDescription("c", [("name", "gamma"), ("type", "x")]),
            ]
        )
        importance = attribute_importance(kb)
        assert importance["name"] > importance["type"]
        assert importance["name"] == pytest.approx(1.0)

    def test_relations_excluded(self):
        kb = KnowledgeBase(
            [
                EntityDescription("a", [("rel", "b"), ("name", "alpha")]),
                EntityDescription("b", [("name", "beta")]),
            ]
        )
        assert "rel" not in attribute_importance(kb)

    def test_partial_coverage_lowers_support(self):
        kb = KnowledgeBase(
            [
                EntityDescription("a", [("name", "alpha"), ("alias", "alpha")]),
                EntityDescription("b", [("name", "beta")]),
            ]
        )
        importance = attribute_importance(kb)
        assert importance["alias"] < importance["name"]


class TestKBStatistics:
    def test_name_attributes_top_k(self):
        kb = KnowledgeBase(
            [
                EntityDescription("a", [("name", "alpha"), ("alias", "aka-a"), ("junk", "x")]),
                EntityDescription("b", [("name", "beta"), ("alias", "aka-b"), ("junk", "x")]),
            ]
        )
        stats = KBStatistics(kb, top_k_name_attributes=2)
        assert set(stats.name_attributes) == {"name", "alias"}

    def test_names_returns_values_of_name_attributes(self):
        kb = KnowledgeBase(
            [
                EntityDescription("a", [("name", "alpha"), ("other", "o1 o2 o3")]),
                EntityDescription("b", [("name", "beta"), ("other", "o4 o5 o6")]),
            ]
        )
        stats = KBStatistics(kb, top_k_name_attributes=1)
        assert stats.names(0) == ("alpha",)

    def test_top_relations_follow_global_importance(self):
        stats = KBStatistics(graph_kb(), top_n_relations=1)
        assert stats.top_relations(1) == ("good",)

    def test_top_neighbors_restricted_to_top_relations(self):
        stats = KBStatistics(graph_kb(), top_n_relations=1)
        assert stats.top_neighbors(1) == (2,)

    def test_top_neighbors_with_large_n_include_all(self):
        stats = KBStatistics(graph_kb(), top_n_relations=5)
        assert set(stats.top_neighbors(1)) == {2, 0}

    def test_in_neighbors_are_reverse_of_top_neighbors(self):
        stats = KBStatistics(graph_kb(), top_n_relations=5)
        for eid in range(len(stats.kb)):
            for neighbor in stats.top_neighbors(eid):
                assert eid in stats.top_in_neighbors(neighbor)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            KBStatistics(graph_kb(), top_k_name_attributes=-1)
        with pytest.raises(ValueError):
            KBStatistics(graph_kb(), top_n_relations=-1)

    def test_zero_k_means_no_names(self):
        stats = KBStatistics(graph_kb(), top_k_name_attributes=0)
        assert stats.name_attributes == ()
        assert stats.names(0) == ()


@st.composite
def random_kb(draw):
    size = draw(st.integers(min_value=1, max_value=8))
    entities = []
    for index in range(size):
        pairs = [("name", f"value{draw(st.integers(0, 9))}")]
        for _ in range(draw(st.integers(0, 3))):
            target = draw(st.integers(0, size - 1))
            relation = draw(st.sampled_from(["r1", "r2"]))
            pairs.append((relation, f"e{target}"))
        entities.append(EntityDescription(f"e{index}", pairs))
    return KnowledgeBase(entities)


class TestStatisticsProperties:
    @given(kb=random_kb())
    @settings(max_examples=40)
    def test_support_and_discriminability_in_unit_interval(self, kb):
        for mapping in (relation_support(kb), relation_discriminability(kb)):
            for value in mapping.values():
                assert 0.0 < value <= 1.0

    @given(kb=random_kb())
    @settings(max_examples=40)
    def test_in_neighbor_reverse_property(self, kb):
        stats = KBStatistics(kb, top_n_relations=2)
        reverse_pairs = {
            (source, target)
            for target in range(len(kb))
            for source in stats.top_in_neighbors(target)
        }
        forward_pairs = {
            (source, target)
            for source in range(len(kb))
            for target in stats.top_neighbors(source)
        }
        assert reverse_pairs == forward_pairs
