"""Unit tests for N-Triples / TSV loading and saving."""

import io

import pytest

from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.rdf import (
    RDFParseError,
    iter_ntriples,
    kb_from_triples,
    load_ground_truth_tsv,
    load_ntriples,
    load_tsv,
    parse_ntriples_line,
    save_ntriples,
)


class TestParseLine:
    def test_iri_object(self):
        assert parse_ntriples_line("<a> <p> <b> .") == ("a", "p", "b")

    def test_plain_literal(self):
        assert parse_ntriples_line('<a> <p> "Bray" .') == ("a", "p", "Bray")

    def test_language_tag_dropped(self):
        assert parse_ntriples_line('<a> <p> "Bray"@en-GB .') == ("a", "p", "Bray")

    def test_datatype_dropped(self):
        line = '<a> <p> "42"^^<http://www.w3.org/2001/XMLSchema#int> .'
        assert parse_ntriples_line(line) == ("a", "p", "42")

    def test_escapes_unescaped(self):
        assert parse_ntriples_line('<a> <p> "say \\"hi\\"\\n" .') == ("a", "p", 'say "hi"\n')

    def test_blank_node_subject(self):
        assert parse_ntriples_line("_:b1 <p> <x> .") == ("_:b1", "p", "x")

    def test_comment_and_blank_lines_skipped(self):
        assert parse_ntriples_line("# comment") is None
        assert parse_ntriples_line("   ") is None

    def test_missing_dot_rejected(self):
        with pytest.raises(RDFParseError):
            parse_ntriples_line("<a> <p> <b>")

    def test_garbage_rejected(self):
        with pytest.raises(RDFParseError):
            parse_ntriples_line("not a triple .")

    def test_literal_subject_rejected(self):
        with pytest.raises(RDFParseError):
            parse_ntriples_line('"lit" <p> <b> .')


class TestKBConstruction:
    def test_iter_ntriples(self):
        lines = ["<a> <p> <b> .", "", "# c", '<b> <q> "x" .']
        assert list(iter_ntriples(lines)) == [("a", "p", "b"), ("b", "q", "x")]

    def test_kb_from_triples_groups_by_subject(self):
        kb = kb_from_triples([("a", "p", "b"), ("a", "q", "v"), ("b", "q", "w")])
        assert len(kb) == 2
        assert kb.relations(kb.id_of("a")) == (("p", kb.id_of("b")),)

    def test_round_trip(self, tmp_path):
        original = KnowledgeBase(
            [
                EntityDescription("http://x/r1", [("http://x/label", 'The "Fat" Duck'), ("http://x/chef", "http://x/c1")]),
                EntityDescription("http://x/c1", [("http://x/label", "John Lake")]),
            ],
            name="round",
        )
        path = tmp_path / "kb.nt"
        save_ntriples(original, path)
        loaded = load_ntriples(path, name="round")
        assert len(loaded) == len(original)
        eid = loaded.id_of("http://x/r1")
        assert loaded.literal_values(eid) == ('The "Fat" Duck',)
        assert loaded.relations(eid) == (("http://x/chef", loaded.id_of("http://x/c1")),)

    def test_save_to_stream(self):
        kb = KnowledgeBase([EntityDescription("a", [("p", "v")])])
        stream = io.StringIO()
        save_ntriples(kb, stream)
        assert stream.getvalue() == '<a> <p> "v" .\n'


class TestTSV:
    def test_load_tsv(self, tmp_path):
        path = tmp_path / "kb.tsv"
        path.write_text("a\tp\tb\na\tq\thello world\n# comment\n")
        kb = load_tsv(path)
        assert len(kb) == 1
        assert kb.literal_values(0) == ("b", "hello world")

    def test_load_tsv_bad_columns(self, tmp_path):
        path = tmp_path / "kb.tsv"
        path.write_text("a\tp\n")
        with pytest.raises(RDFParseError):
            load_tsv(path)

    def test_ground_truth_tsv(self, tmp_path):
        path = tmp_path / "gt.tsv"
        path.write_text("# pairs\nu1\tv1\nu2\tv2\n")
        assert load_ground_truth_tsv(path) == {("u1", "v1"), ("u2", "v2")}

    def test_ground_truth_bad_columns(self, tmp_path):
        path = tmp_path / "gt.tsv"
        path.write_text("a\tb\tc\n")
        with pytest.raises(RDFParseError):
            load_ground_truth_tsv(path)
